"""``vhdl-ifa serve``: a fault-tolerant multi-tenant analysis service.

The server keeps one :class:`repro.workspace.Workspace` — and therefore one
warm artifact cache and one named-policy registry — alive across requests.
Requests are parsed and validated on the asyncio event loop; the CPU-bound
analysis itself runs in one of two modes:

**pool mode** (``workers >= 1``, the ``vhdl-ifa serve`` default)
    Analyses are dispatched to a supervised pool of worker processes
    (:mod:`repro.pipeline.pool`), each layering a per-worker in-memory cache
    over the shared ``--cache-dir`` disk tier.  The pool provides the fault
    model of a real multi-tenant service:

    * **per-request timeouts** — a request that exceeds ``timeout`` seconds
      answers with a structured ``504`` and its (possibly hung) worker is
      killed and respawned; concurrent requests on other workers are
      unaffected and the service never dies;
    * **crash recovery** — a worker that dies mid-request (crash, OOM kill)
      yields a structured ``500`` for that request only, and is respawned;
    * **bounded admission with load shedding** — at most ``queue_depth``
      requests are admitted at once; excess requests are shed immediately
      with ``429`` and a ``Retry-After`` header, never queued unboundedly;
    * **single-flight deduplication** — identical concurrent requests (same
      content-addressed source digest, options, file label and policy) share
      ONE analysis: followers await the leader's result and each gets its own
      response (the ``dedup_hits`` counter counts the coalesced requests).

**inline mode** (``workers=None``, the embedding/test default)
    Analysis runs synchronously on the event loop, serialising requests —
    the PR-4/PR-5 behaviour, kept for tests and callers that hand the server
    a concrete in-memory cache object.

Malformed, oversized (``413``) or non-JSON bodies are rejected on the event
loop with structured ``4xx`` documents and never touch a worker; a client
that disconnects mid-request cannot leak an admission slot.  Fault injection
for all of the above is deterministic via :mod:`repro.pipeline.faults`
(``faults=FaultPlan(...)`` or the ``VHDL_IFA_FAULTS`` environment switch).

Endpoints
---------
``POST /analyze`` / ``POST /check`` / ``POST /lint`` / ``POST /policy``
    As documented in ``docs/cli.md`` and ``docs/serve.md``; analyze/check/
    lint response bodies are byte-identical to ``vhdl-ifa analyze --json`` /
    ``check --json`` / ``lint --json`` in both execution modes (worker and
    inline paths share :func:`execute_request` and the render builders).
``GET /healthz``
    Liveness: ``200`` while serving, ``503`` while draining; worker counts.
``GET /metrics``
    Operational counters: queue depth and in-flight gauge, shed/dedup/
    timeout/crash/restart counters, cache hit ratios, and per-stage latency
    histograms.
``GET /stats`` / ``GET /version``
    The PR-4/PR-5 session statistics and package version, unchanged.

Shutdown: ``SIGTERM``/``SIGINT`` drain gracefully — stop accepting, let
in-flight requests finish (bounded by ``drain_grace``), then stop the pool.
Every response body carries the ``"schema": "vhdl-ifa/v1"`` stamp.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.pipeline.cache import source_digest
from repro.pipeline.faults import FaultInjector, FaultPlan
from repro.pipeline.pool import PoolResult, WorkerPool
from repro.pipeline.render import (
    analyze_document,
    json_text,
    policy_summary,
    stamped,
    version_document,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default cap on request bodies; larger requests are rejected, not buffered.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Default bound on admitted (queued + running) analysis requests.
DEFAULT_QUEUE_DEPTH = 64

#: Histogram bucket upper bounds (seconds) for request/stage latencies.
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_REQUEST_ERRORS = (ReproError, OSError, UnicodeDecodeError)

#: The pooled analysis endpoints (path → request kind).
_ANALYSIS_PATHS = {"/analyze": "analyze", "/check": "check", "/lint": "lint"}


def interaction_id(method: str, path: str, body: bytes = b"") -> str:
    """The stable content address of one request stimulus.

    Every *routed* response carries it as the ``X-Interaction-Id`` header, so
    clients (and the contract suite in :mod:`repro.contract`) can correlate
    recorded interactions with live traffic: the same method + path + body
    bytes always map to the same id, regardless of the response.  Requests
    rejected before the body is read (malformed HTTP, an oversized
    Content-Length answered ``413``) carry no id — the stimulus was never
    fully observed.
    """
    digest = hashlib.sha256()
    digest.update(method.encode("utf-8"))
    digest.update(b" ")
    digest.update(path.encode("utf-8"))
    digest.update(b"\n")
    digest.update(body or b"")
    return digest.hexdigest()[:12]


class _Histogram:
    """A fixed-bucket latency histogram (Prometheus-style cumulative ``le``)."""

    __slots__ = ("count", "total", "_bucket_counts")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self._bucket_counts = [0] * (len(LATENCY_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        for index, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                self._bucket_counts[index] += 1
                return
        self._bucket_counts[-1] += 1

    def to_dict(self) -> Dict[str, Any]:
        buckets: Dict[str, int] = {}
        cumulative = 0
        for bound, count in zip(LATENCY_BUCKETS, self._bucket_counts):
            cumulative += count
            buckets[f"{bound:g}"] = cumulative
        buckets["+inf"] = self.count
        return {
            "count": self.count,
            "sum_seconds": round(self.total, 6),
            "buckets": buckets,
        }


def execute_request(
    workspace: Any,
    kind: str,
    request: Dict[str, Any],
    injector: Optional[FaultInjector] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Run one validated analyze/check request against a workspace.

    This is the single execution path both modes share — the inline server
    calls it on the event loop, every pool worker calls it in its own
    process — which is what keeps pooled responses byte-identical to inline
    ones (and both identical to the CLI's ``--json`` output).  Errors are
    classified exactly like the PR-4 server: anything the toolchain itself
    diagnoses is a ``400`` document, everything else a ``500`` — never an
    exception to the caller.
    """
    try:
        if injector is not None:
            injector.before_analysis(request.get("source", ""))
        opts = {
            "entity": request.get("entity"),
            "improved": request.get("improved", True),
            "loop_processes": request.get("loop_processes", True),
        }
        if kind == "analyze":
            run = workspace.analyze_run(request["source"], **opts)
            return 200, analyze_document(
                run,
                collapse=request.get("collapse", False),
                self_loops=request.get("self_loops", False),
                file=request.get("file"),
            )
        if kind == "lint":
            linted = workspace.lint(
                request["source"], policy=request.get("policy"), **opts
            )
            return 200, linted.document(file=request.get("file"))
        checked = workspace.check(
            request["source"],
            request["policy"],
            outputs=request.get("outputs"),
            transitive=request.get("transitive"),
            restrict_to_ports=request.get("ports_only", False),
            **opts,
        )
        return 200, checked.document(file=request.get("file"))
    except _REQUEST_ERRORS as error:
        return 400, {"error": str(error)}
    except Exception as error:  # never kill the worker/server on one request
        return 500, {"error": f"internal error: {error!r}"}


class AnalysisServer:
    """The request handlers plus the shared state of one server.

    ``workspace`` supplies the session state (cache, policy registry); when
    omitted one is built around ``cache``.  ``workers`` switches on pool
    mode (see the module docstring); ``timeout`` is the per-request
    wall-clock budget in pool mode; ``queue_depth`` bounds admission;
    ``faults`` arms deterministic fault injection in this server and its
    workers.  ``self.pipeline`` aliases the workspace's pipeline, so tests
    can keep instrumenting the inline path directly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache: Optional[Any] = None,
        workspace: Optional[Any] = None,
        *,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_body_bytes: int = MAX_BODY_BYTES,
        faults: Optional[FaultPlan] = None,
    ):
        # Imported here: repro.workspace imports this package's siblings, so
        # a module-level import would be circular through repro.pipeline.
        from repro.workspace import Workspace

        if workspace is None:
            workspace = Workspace(cache=cache)
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.workspace = workspace
        self.host = host
        self.port = port
        self.cache = workspace.cache
        self.pipeline = workspace.pipeline
        self.workers = workers
        self.timeout = timeout
        self.queue_depth = queue_depth
        self.max_body_bytes = max_body_bytes
        self.faults = faults
        self.started_at = time.time()
        self.request_counts: Dict[str, int] = {}
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[WorkerPool] = None
        self._executor: Optional[Any] = None
        self._injector = FaultInjector(faults) if faults is not None else None
        # Admission / single-flight state (event-loop confined).
        self._admitted = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        # Operational counters for GET /metrics.
        self._counters: Dict[str, int] = {
            "shed": 0,
            "dedup_hits": 0,
            "timeouts": 0,
            "worker_crashes": 0,
        }
        self._request_latency = _Histogram()
        self._stage_latency: Dict[str, _Histogram] = {}
        self._worker_meta: Dict[int, Dict[str, Any]] = {}
        if self._injector is not None and not self._pool_mode:
            # Inline mode applies cache corruption to its own cache tier
            # (pool mode ships the plan to the workers instead).
            wrapped = self._injector.wrap_cache(self.workspace.cache)
            self.workspace.cache = wrapped
            self.workspace.pipeline.cache = wrapped
            self.cache = wrapped

    @property
    def _pool_mode(self) -> bool:
        return self.workers is not None and self.workers >= 1

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind, spawn the worker pool (pool mode), and start accepting."""
        if self._pool_mode and self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = WorkerPool(
                self.workers,
                timeout=self.timeout,
                fault_plan=self.faults,
                **self.workspace.worker_configuration(),
            )
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="vhdl-ifa-dispatch"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def drain(self, grace: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work, stop.

        ``grace`` bounds how long in-flight requests may take to finish;
        whatever is still running afterwards is abandoned with the pool.
        New connections are refused once draining starts (the listener is
        closed), and ``GET /healthz`` reports ``503 draining``.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + grace
        while self._admitted > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        await self.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            status, document, headers = await self._answer(method, path, body)
            headers = dict(headers)
            headers.setdefault("X-Interaction-Id", interaction_id(method, path, body))
            await self._respond(writer, status, document, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _BadRequest("malformed HTTP request")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("malformed Content-Length header")
                if length < 0:
                    raise _BadRequest("malformed Content-Length header")
        if length > self.max_body_bytes:
            # Rejected before a single body byte is buffered — an oversized
            # request can never reach a worker or an admission slot.
            raise _BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
                status=413,
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest("truncated request body")
        return method, path.split("?", 1)[0], body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        document: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Every body carries the schema stamp — including error documents.
        body = (json_text(stamped(document)) + "\n").encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    async def _answer(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Route one request; analysis goes through the pool when one runs."""
        if self._pool is not None and path in _ANALYSIS_PATHS and method == "POST":
            route = f"{method} {path}"
            self.request_counts[route] = self.request_counts.get(route, 0) + 1
            try:
                payload = self._parse_payload(body)
            except _BadRequest as error:
                return error.status, {"error": str(error)}, {}
            return await self._handle_pooled(_ANALYSIS_PATHS[path], payload)
        status, document = self._dispatch(method, path, body)
        return status, document, {}

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        """The synchronous (inline) routing path.

        Pool mode intercepts ``POST /analyze|/check|/lint`` before this
        method; everything else — and every request in inline mode — lands
        here.
        """
        route = f"{method} {path}"
        self.request_counts[route] = self.request_counts.get(route, 0) + 1
        if path in ("/analyze", "/check", "/lint", "/policy"):
            if method != "POST":
                return 405, {"error": f"{path} expects POST, got {method}"}
            try:
                payload = self._parse_payload(body)
                if path == "/policy":
                    return 200, self._policy(payload)
                return self._run_inline(_ANALYSIS_PATHS[path], payload)
            except _BadRequest as error:
                return error.status, {"error": str(error)}
            except _REQUEST_ERRORS as error:
                return 400, {"error": str(error)}
            except Exception as error:  # never kill the server on one request
                return 500, {"error": f"internal error: {error!r}"}
        if path in ("/stats", "/version", "/healthz", "/metrics"):
            if method != "GET":
                return 405, {"error": f"{path} expects GET, got {method}"}
            if path == "/stats":
                return 200, self._stats()
            if path == "/version":
                return 200, version_document()
            if path == "/healthz":
                return self._healthz()
            return 200, self._metrics()
        return 404, {"error": f"unknown path {path!r}"}

    @staticmethod
    def _parse_payload(body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # ----------------------------------------------------- request building

    @staticmethod
    def _load_source(payload: Dict[str, Any]) -> Tuple[str, Optional[str]]:
        file = payload.get("file")
        source = payload.get("source")
        if (file is None) == (source is None):
            raise _BadRequest("exactly one of 'file' and 'source' is required")
        if file is not None:
            if not isinstance(file, str):
                raise _BadRequest("'file' must be a path string")
            with open(file, encoding="utf-8") as handle:
                return handle.read(), file
        if not isinstance(source, str):
            raise _BadRequest("'source' must be VHDL source text")
        return source, None

    def _build_request(self, kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a payload into the plain request dict both modes execute.

        Everything that can be rejected without an analysis — missing or
        unreadable sources, malformed option types, unknown policy names —
        is rejected here, on the event loop: a bad request never costs an
        admission slot or a worker round-trip.
        """
        source, file = self._load_source(payload)
        request: Dict[str, Any] = {
            "source": source,
            "file": file,
            "entity": payload.get("entity"),
            "improved": not payload.get("basic", False),
            "loop_processes": not payload.get("straight_line", False),
        }
        if kind == "analyze":
            request["collapse"] = bool(payload.get("collapse", False))
            request["self_loops"] = bool(payload.get("self_loops", False))
            return request
        if kind == "lint":
            spec = payload.get("policy")
            if spec is not None and not isinstance(spec, (str, dict)):
                raise _BadRequest(
                    "'policy' must be a registered policy name or a policy document"
                )
            # Resolved here (not in the worker) so unknown names reject on
            # the event loop; the resolved policy is a picklable dataclass.
            request["policy"] = None if spec is None else self.workspace.policy(spec)
            return request
        outputs = payload.get("output", [])
        if not isinstance(outputs, list):
            raise _BadRequest("'output' must be a list of resource names")
        transitive = payload.get("transitive")
        request.update(
            {
                "outputs": outputs or None,
                "policy": self._resolve_policy(payload),
                "transitive": None if transitive is None else bool(transitive),
                "ports_only": bool(payload.get("ports_only", False)),
            }
        )
        return request

    def _resolve_policy(self, payload: Dict[str, Any]) -> Any:
        """The policy of one ``/check`` request: named/inline, or two-level."""
        # Imported lazily: repro.security imports repro.analysis.api, which
        # itself imports this package (same cycle the report stage breaks).
        from repro.security.policy import TwoLevelPolicy

        spec = payload.get("policy")
        secrets = payload.get("secret")
        if spec is not None:
            if secrets is not None:
                raise _BadRequest("'policy' and 'secret' are mutually exclusive")
            if not isinstance(spec, (str, dict)):
                raise _BadRequest(
                    "'policy' must be a registered policy name or a policy document"
                )
            return self.workspace.policy(spec)
        if secrets is None:
            secrets = []
        if not isinstance(secrets, list):
            raise _BadRequest("'secret' must be a list of resource names")
        return TwoLevelPolicy(secret_resources=secrets)

    def _dedup_key(self, kind: str, request: Dict[str, Any]) -> str:
        """The single-flight identity of one request.

        Built on the same content address the artifact cache keys by (the
        source digest) plus every input that shapes the response document —
        two requests with equal keys are guaranteed byte-identical answers,
        so the leader's document can safely serve every follower.
        """
        identity = {
            key: value
            for key, value in request.items()
            if key not in ("source", "policy")
        }
        identity["kind"] = kind
        identity["digest"] = source_digest(request["source"])
        if request.get("policy") is not None:
            identity["policy"] = policy_summary(request["policy"])
        return json.dumps(identity, sort_keys=True)

    # ------------------------------------------------------------ pool path

    async def _handle_pooled(
        self, kind: str, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Admission control, single-flight dedup, and pool dispatch."""
        try:
            request = self._build_request(kind, payload)
        except _BadRequest as error:
            return error.status, {"error": str(error)}, {}
        except _REQUEST_ERRORS as error:
            return 400, {"error": str(error)}, {}

        key = self._dedup_key(kind, request)
        leader = self._inflight.get(key)
        if leader is not None:
            # Single flight: coalesce onto the in-flight identical request.
            # shield() keeps a follower's disconnect from cancelling the
            # leader's future (other followers may still be waiting on it).
            self._counters["dedup_hits"] += 1
            status, document = await asyncio.shield(leader)
            return status, document, {}

        if self._admitted >= self.queue_depth:
            self._counters["shed"] += 1
            retry_after = 1
            return (
                429,
                {
                    "error": (
                        f"server at capacity ({self.queue_depth} requests "
                        "admitted); retry later"
                    ),
                    "retry_after": retry_after,
                },
                {"Retry-After": str(retry_after)},
            )

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._admitted += 1
        started = time.perf_counter()
        try:
            result: PoolResult = await loop.run_in_executor(
                self._executor, self._pool.run, kind, request
            )
            self._note_pool_result(result, time.perf_counter() - started)
            outcome = (result.status, result.document)
        except Exception as error:  # supervisor bug — still answer the client
            outcome = (500, {"error": f"internal error: {error!r}"})
        finally:
            # The slot and the single-flight entry are released no matter
            # how the request ends (including client disconnects upstream).
            self._admitted -= 1
            self._inflight.pop(key, None)
        if not future.done():
            future.set_result(outcome)
        return outcome[0], outcome[1], {}

    def _note_pool_result(self, result: PoolResult, elapsed: float) -> None:
        if result.timed_out:
            self._counters["timeouts"] += 1
        if result.crashed:
            self._counters["worker_crashes"] += 1
        if result.worker >= 0 and result.meta:
            self._worker_meta[result.worker] = result.meta
        if result.status == 200:
            self._observe_latencies(elapsed, result.document)

    def _observe_latencies(self, elapsed: float, document: Dict[str, Any]) -> None:
        self._request_latency.observe(elapsed)
        timings = document.get("timings")
        if isinstance(timings, dict):
            for stage, seconds in timings.items():
                histogram = self._stage_latency.get(stage)
                if histogram is None:
                    histogram = self._stage_latency[stage] = _Histogram()
                histogram.observe(float(seconds))

    # ---------------------------------------------------------- inline path

    def _run_inline(
        self, kind: str, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        request = self._build_request(kind, payload)
        started = time.perf_counter()
        status, document = execute_request(
            self.workspace, kind, request, self._injector
        )
        if status == 200:
            self._observe_latencies(time.perf_counter() - started, document)
        return status, document

    # -------------------------------------------------------------- handlers

    def _policy(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate (and optionally register) a declarative policy document.

        A name that is already registered — e.g. preloaded by the operator
        via ``serve --policy`` — cannot be replaced with a *different*
        policy: that would let any client silently weaken the verdicts of
        later ``POST /check`` requests.  Re-posting an identical document is
        a true ``200`` no-op: the registered object is kept (nothing is
        re-bound, so in-flight ``/check`` requests never observe a swap) and
        the canonical document is echoed — replay loops over a recorded
        corpus can re-register the same policy any number of times.
        """
        from repro.security.policy_file import (
            PolicyFileError,
            policy_from_dict,
            policy_to_dict,
        )

        policy = policy_from_dict(payload, context="request")
        if policy.name is not None:
            existing = self.workspace.policies.get(policy.name)
            if existing is not None:
                try:
                    identical = policy_to_dict(existing) == policy_to_dict(policy)
                except PolicyFileError:
                    # A registered policy that cannot round-trip through the
                    # file format (programmatic, conflicting level names) can
                    # never equal a posted document — that is a conflict, not
                    # a 500 from the idempotence probe itself.
                    identical = False
                if not identical:
                    raise _BadRequest(
                        f"policy {policy.name!r} is already registered with a "
                        "different definition; pick another name",
                        status=409,
                    )
                policy = existing
            else:
                self.workspace.register_policy(policy.name, policy)
        return stamped(
            {
                "command": "policy",
                "valid": True,
                "registered": policy.name,
                "policy": policy_to_dict(policy),
            }
        )

    def _stats(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "command": "stats",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": dict(sorted(self.request_counts.items())),
            "policies": sorted(self.workspace.policies),
        }
        if self.cache is not None:
            document["cache"] = self.cache.stats()
        return stamped(document)

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness: 200 while serving, 503 once draining has started."""
        document: Dict[str, Any] = {
            "command": "healthz",
            "status": "draining" if self.draining else "ok",
            "mode": "pool" if self._pool is not None else "inline",
        }
        if self._pool is not None:
            document["workers"] = self._pool.stats()
        return (503 if self.draining else 200), stamped(document)

    def _metrics(self) -> Dict[str, Any]:
        """The operational counters of this server process."""
        document: Dict[str, Any] = {
            "command": "metrics",
            "mode": "pool" if self._pool is not None else "inline",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": dict(sorted(self.request_counts.items())),
            "in_flight": self._admitted,
            "queue_depth": self.queue_depth,
            "shed": self._counters["shed"],
            "dedup_hits": self._counters["dedup_hits"],
            "timeouts": self._counters["timeouts"],
            "worker_crashes": self._counters["worker_crashes"],
            "worker_restarts": self._pool.restarts if self._pool is not None else 0,
        }
        if self._pool is not None:
            document["workers"] = self._pool.stats()
            document["cache"] = self._aggregate_worker_cache()
        elif self.cache is not None:
            stats = self.cache.stats()
            document["cache"] = self._with_hit_ratio(
                {"hits": stats.get("hits", 0), "misses": stats.get("misses", 0)}
            )
        document["latency"] = {
            "request": self._request_latency.to_dict(),
            "stages": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._stage_latency.items())
            },
        }
        return stamped(document)

    def _aggregate_worker_cache(self) -> Dict[str, Any]:
        """Summed cache counters from each worker's latest self-report."""
        hits = sum(
            meta.get("cache", {}).get("hits", 0)
            for meta in self._worker_meta.values()
        )
        misses = sum(
            meta.get("cache", {}).get("misses", 0)
            for meta in self._worker_meta.values()
        )
        return self._with_hit_ratio(
            {"hits": hits, "misses": misses, "workers_reporting": len(self._worker_meta)}
        )

    @staticmethod
    def _with_hit_ratio(counters: Dict[str, Any]) -> Dict[str, Any]:
        lookups = counters.get("hits", 0) + counters.get("misses", 0)
        counters["hit_ratio"] = (
            round(counters["hits"] / lookups, 4) if lookups else None
        )
        return counters


class _BadRequest(Exception):
    """A request the server answers with a 4xx JSON error body."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ServerThread:
    """Run an :class:`AnalysisServer` on a background thread.

    The context-manager form the tests and benchmarks use::

        with ServerThread(AnalysisServer(port=0, cache=...)) as server:
            ...  # server.port is the bound port

    The event loop lives on the thread; ``__exit__`` stops it and joins
    (stopping the worker pool too, in pool mode).
    """

    def __init__(self, server: AnalysisServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> AnalysisServer:
        started = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="vhdl-ifa-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=60):
            raise RuntimeError("analysis server failed to start in time")
        return self.server

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache: Optional[Any] = None,
    announce=None,
    workspace: Optional[Any] = None,
    *,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    faults: Optional[FaultPlan] = None,
    drain_grace: float = 10.0,
) -> None:
    """Run a server until interrupted (the ``vhdl-ifa serve`` body).

    ``announce`` is called with the bound URL once the server is listening
    (the CLI prints it to stderr); port 0 binds an ephemeral port.
    ``workspace`` supplies a pre-configured session (cache, named policies).
    ``SIGTERM`` and ``SIGINT`` trigger a graceful drain: the listener closes
    immediately, in-flight requests get up to ``drain_grace`` seconds to
    finish, then the worker pool stops.
    """
    server = AnalysisServer(
        host=host,
        port=port,
        cache=cache,
        workspace=workspace,
        workers=workers,
        timeout=timeout,
        queue_depth=queue_depth,
        faults=faults,
    )

    async def main() -> None:
        await server.start()
        if announce is not None:
            announce(f"http://{server.host}:{server.port}")
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support on loops
        await stop_event.wait()
        await server.drain(drain_grace)

    asyncio.run(main())
