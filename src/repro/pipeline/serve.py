"""``vhdl-ifa serve``: a long-lived analysis service over one warm cache.

A small asyncio HTTP server (stdlib only) that keeps one
:class:`~repro.pipeline.stages.Pipeline` — and therefore one
:class:`~repro.pipeline.cache.TieredArtifactCache` — alive across requests,
so repeated analyses of the same design are served from warm artifacts
instead of re-paying parse/elaborate/closure on every invocation.

The server is a thin shell over one :class:`repro.workspace.Workspace`
(the v1 session facade): the workspace owns the warm cache and the named
policy registry every request resolves against.

Endpoints
---------
``POST /analyze``
    Body: ``{"file": PATH}`` or ``{"source": TEXT}``, plus the optional
    ``entity``, ``basic``, ``straight_line``, ``collapse``, ``self_loops``
    keys mirroring the CLI flags.  The response body is byte-identical to
    what ``vhdl-ifa analyze FILE --json`` prints for the same input and
    cache state (both sides render :func:`repro.pipeline.render.analyze_document`
    through :func:`repro.pipeline.render.json_text`).
``POST /check``
    Body: the ``analyze`` keys plus either ``secret`` (list, the two-level
    policy) or ``policy`` (a registered policy name or an inline policy
    document), and the optional ``output`` (list), ``transitive``,
    ``ports_only`` keys.  The response is byte-identical to
    ``vhdl-ifa check FILE --json ...``.
``POST /policy``
    Body: a declarative policy document (the TOML file format as JSON).
    Validates it and echoes the normalised document; with a ``name`` key the
    policy is also registered for later ``POST /check`` requests.
``GET /version``
    The package version (same source as ``vhdl-ifa --version``).
``GET /stats``
    Uptime, per-endpoint request counters, registered policies and the
    cache statistics of both tiers.

Analysis runs synchronously on the event loop: requests are effectively
serialised, which is the honest behaviour for a CPU-bound single-process
service (run several server processes over one ``--cache-dir`` to scale
out; the disk tier is multi-process safe).  Errors never kill the server:
bad JSON or a failing analysis become a ``4xx`` JSON body ``{"error": ...}``.
Every response body carries the ``"schema": "vhdl-ifa/v1"`` stamp.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.pipeline.render import (
    analyze_document,
    json_text,
    stamped,
    version_document,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Requests larger than this are rejected instead of buffered.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REQUEST_ERRORS = (ReproError, OSError, UnicodeDecodeError)


class AnalysisServer:
    """The request handlers plus the shared workspace state of one server.

    ``workspace`` supplies the session state (cache, policy registry); when
    omitted one is built around ``cache``.  ``self.pipeline`` aliases the
    workspace's pipeline, so tests can keep instrumenting it directly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache: Optional[Any] = None,
        workspace: Optional[Any] = None,
    ):
        # Imported here: repro.workspace imports this package's siblings, so
        # a module-level import would be circular through repro.pipeline.
        from repro.workspace import Workspace

        if workspace is None:
            workspace = Workspace(cache=cache)
        self.workspace = workspace
        self.host = host
        self.port = port
        self.cache = workspace.cache
        self.pipeline = workspace.pipeline
        self.started_at = time.time()
        self.request_counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections; resolves the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            status, document = self._dispatch(method, path, body)
            await self._respond(writer, status, document)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _BadRequest("malformed HTTP request")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("malformed Content-Length header")
                if length < 0:
                    raise _BadRequest("malformed Content-Length header")
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", status=413)
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest("truncated request body")
        return method, path.split("?", 1)[0], body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, document: Dict[str, Any]
    ) -> None:
        # Every body carries the schema stamp — including error documents.
        body = (json_text(stamped(document)) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        route = f"{method} {path}"
        self.request_counts[route] = self.request_counts.get(route, 0) + 1
        if path in ("/analyze", "/check", "/policy"):
            if method != "POST":
                return 405, {"error": f"{path} expects POST, got {method}"}
            try:
                payload = self._parse_payload(body)
                if path == "/analyze":
                    return 200, self._analyze(payload)
                if path == "/check":
                    return 200, self._check(payload)
                return 200, self._policy(payload)
            except _BadRequest as error:
                return error.status, {"error": str(error)}
            except _REQUEST_ERRORS as error:
                return 400, {"error": str(error)}
            except Exception as error:  # never kill the server on one request
                return 500, {"error": f"internal error: {error!r}"}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": f"/stats expects GET, got {method}"}
            return 200, self._stats()
        if path == "/version":
            if method != "GET":
                return 405, {"error": f"/version expects GET, got {method}"}
            return 200, version_document()
        return 404, {"error": f"unknown path {path!r}"}

    @staticmethod
    def _parse_payload(body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # -------------------------------------------------------------- handlers

    @staticmethod
    def _load_source(payload: Dict[str, Any]) -> Tuple[str, Optional[str]]:
        file = payload.get("file")
        source = payload.get("source")
        if (file is None) == (source is None):
            raise _BadRequest("exactly one of 'file' and 'source' is required")
        if file is not None:
            if not isinstance(file, str):
                raise _BadRequest("'file' must be a path string")
            with open(file, encoding="utf-8") as handle:
                return handle.read(), file
        if not isinstance(source, str):
            raise _BadRequest("'source' must be VHDL source text")
        return source, None

    @staticmethod
    def _analysis_keys(payload: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "entity": payload.get("entity"),
            "improved": not payload.get("basic", False),
            "loop_processes": not payload.get("straight_line", False),
        }

    def _analyze(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        source, file = self._load_source(payload)
        run = self.workspace.analyze_run(source, **self._analysis_keys(payload))
        return analyze_document(
            run,
            collapse=bool(payload.get("collapse", False)),
            self_loops=bool(payload.get("self_loops", False)),
            file=file,
        )

    def _resolve_policy(self, payload: Dict[str, Any]) -> Any:
        """The policy of one ``/check`` request: named/inline, or two-level."""
        # Imported lazily: repro.security imports repro.analysis.api, which
        # itself imports this package (same cycle the report stage breaks).
        from repro.security.policy import TwoLevelPolicy

        spec = payload.get("policy")
        secrets = payload.get("secret")
        if spec is not None:
            if secrets is not None:
                raise _BadRequest("'policy' and 'secret' are mutually exclusive")
            if not isinstance(spec, (str, dict)):
                raise _BadRequest(
                    "'policy' must be a registered policy name or a policy document"
                )
            return self.workspace.policy(spec)
        if secrets is None:
            secrets = []
        if not isinstance(secrets, list):
            raise _BadRequest("'secret' must be a list of resource names")
        return TwoLevelPolicy(secret_resources=secrets)

    def _check(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        source, file = self._load_source(payload)
        outputs = payload.get("output", [])
        if not isinstance(outputs, list):
            raise _BadRequest("'output' must be a list of resource names")
        policy = self._resolve_policy(payload)
        transitive = payload.get("transitive")
        checked = self.workspace.check(
            source,
            policy,
            outputs=outputs or None,
            transitive=None if transitive is None else bool(transitive),
            restrict_to_ports=bool(payload.get("ports_only", False)),
            **self._analysis_keys(payload),
        )
        return checked.document(file=file)

    def _policy(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate (and optionally register) a declarative policy document.

        A name that is already registered — e.g. preloaded by the operator
        via ``serve --policy`` — cannot be replaced with a *different*
        policy: that would let any client silently weaken the verdicts of
        later ``/check`` requests.  Re-posting an identical document is
        idempotent and fine.
        """
        from repro.security.policy_file import policy_from_dict, policy_to_dict

        policy = policy_from_dict(payload, context="request")
        if policy.name is not None:
            existing = self.workspace.policies.get(policy.name)
            if existing is not None and policy_to_dict(existing) != policy_to_dict(
                policy
            ):
                raise _BadRequest(
                    f"policy {policy.name!r} is already registered with a "
                    "different definition; pick another name",
                    status=409,
                )
            self.workspace.register_policy(policy.name, policy)
        return stamped(
            {
                "command": "policy",
                "valid": True,
                "registered": policy.name,
                "policy": policy_to_dict(policy),
            }
        )

    def _stats(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "command": "stats",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": dict(sorted(self.request_counts.items())),
            "policies": sorted(self.workspace.policies),
        }
        if self.cache is not None:
            document["cache"] = self.cache.stats()
        return stamped(document)


class _BadRequest(Exception):
    """A request the server answers with a 4xx JSON error body."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ServerThread:
    """Run an :class:`AnalysisServer` on a background thread.

    The context-manager form the tests and benchmarks use::

        with ServerThread(AnalysisServer(port=0, cache=...)) as server:
            ...  # server.port is the bound port

    The event loop lives on the thread; ``__exit__`` stops it and joins.
    """

    def __init__(self, server: AnalysisServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> AnalysisServer:
        started = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="vhdl-ifa-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("analysis server failed to start in time")
        return self.server

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache: Optional[Any] = None,
    announce=None,
    workspace: Optional[Any] = None,
) -> None:
    """Run a server until interrupted (the ``vhdl-ifa serve`` body).

    ``announce`` is called with the bound URL once the server is listening
    (the CLI prints it to stderr); port 0 binds an ephemeral port.
    ``workspace`` supplies a pre-configured session (cache, named policies).
    """
    server = AnalysisServer(host=host, port=port, cache=cache, workspace=workspace)

    async def main() -> None:
        await server.start()
        if announce is not None:
            announce(f"http://{server.host}:{server.port}")
        await server.serve_forever()

    asyncio.run(main())
