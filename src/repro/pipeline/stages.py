"""The staged analysis pipeline.

A full Information Flow analysis decomposes into named stages, run in order:

========== =====================================================
stage      artefact
========== =====================================================
parse      the VHDL1 AST (:func:`repro.vhdl.parser.parse_program`)
elaborate  the :class:`~repro.vhdl.elaborate.Design`
cfg        the :class:`~repro.cfg.builder.ProgramCFG`
active     the per-process active-signals results (Table 4)
reaching   the whole-program Reaching Definitions (Table 5)
local      the local Resource Matrix ``RM_lo`` (Table 6)
specialize the specialised RD results ``RD†``/``RD†ϕ`` (Table 7)
closure    the closed matrix ``RM_gl`` (Table 8, optionally Table 9)
flow_graph the information-flow graph
lint       the lint findings (``vhdl-ifa lint`` runs only; full catalog)
report     the covert-channel report (only when a policy is given)
========== =====================================================

Each stage is individually invokable (``Pipeline.run(..., until="cfg")``
stops after the CFG; ``PipelineResult.artifacts`` exposes every intermediate
artefact), wall-clock timed (``PipelineResult.timings``), and backed by a
content-addressed artifact cache (any of the stores in
:mod:`repro.pipeline.cache` — in-memory, on-disk, or the two-tier
composition) keyed by source hash + the analysis options the stage depends
on — so repeated runs of the same design skip straight to the cached
artefacts (``PipelineResult.cached_stages`` says which), across process
restarts when the cache has a disk tier.

The :class:`AnalysisOptions` fields each stage's cache key includes
(``Stage.option_fields``; see also ``docs/architecture.md``):

========== ==========================================================
stage      cache-key option fields (plus the stage name + source hash)
========== ==========================================================
parse      —
elaborate  entity
cfg        entity, loop_processes
active     entity, loop_processes
reaching   entity, loop_processes, use_under_approximation
local      entity, loop_processes
specialize entity, loop_processes, use_under_approximation
closure    entity, loop_processes, use_under_approximation, improved
flow_graph entity, loop_processes, use_under_approximation, improved
lint       entity, loop_processes, use_under_approximation, improved
kemmerer   entity, loop_processes
report     never cached (cheap, policy-dependent)
========== ==========================================================

The ``lint`` stage caches the *complete* rule catalog's findings at default
severities (a plain tuple of diagnostics, not universe-bound); a policy
file's ``[lint]`` selection and severity overrides are applied after the
stage, so one cached artefact serves every lint configuration.

Universe discipline: stages from ``local`` onward intern resource names into
the run's :class:`~repro.dataflow.universe.FactUniverse`.  Their cached
artefacts are stored *together with* the universe they were built in and a
cache hit adopts that universe, keeping bitset-encoded artefacts and universe
consistent.  When a caller pins an explicit ``universe=`` (to pool several
runs), those stages bypass the cache — a cached matrix from another universe
would not be poolable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.closure import global_resource_matrix
from repro.analysis.flowgraph import FlowGraph
from repro.analysis.improved import improved_global_resource_matrix
from repro.analysis.kemmerer import kemmerer_analysis
from repro.analysis.local_deps import local_resource_matrix
from repro.analysis.reaching_active import analyze_all_active_signals
from repro.analysis.reaching_defs import analyze_reaching_definitions
from repro.analysis.specialize import specialize
from repro.cfg.builder import build_cfg
from repro.dataflow import bitset
from repro.dataflow.universe import FactUniverse
from repro.errors import AnalysisError
from repro.pipeline.artifacts import (
    AnalysisOptions,
    AnalysisResult,
    PipelineResult,
    StageTiming,
)
from repro.pipeline.cache import ArtifactCache, source_digest
from repro.vhdl.elaborate import Design, elaborate
from repro.vhdl.parser import parse_program


@dataclass
class PipelineContext:
    """The mutable artefact store one pipeline run threads through its stages."""

    options: AnalysisOptions
    universe: FactUniverse
    universe_pinned: bool = False
    universe_locked: bool = False
    """True once a universe-bound artefact exists: the run's universe is fixed."""
    source: Optional[str] = None
    source_key: Optional[str] = None
    program: Optional[Any] = None
    design: Optional[Design] = None
    program_cfg: Optional[Any] = None
    active: Optional[Any] = None
    reaching: Optional[Any] = None
    rm_local: Optional[Any] = None
    specialized: Optional[Any] = None
    closure: Optional[Any] = None
    graph: Optional[FlowGraph] = None
    kemmerer: Optional[Any] = None
    analysis: Optional[AnalysisResult] = None
    lint: Optional[Any] = None
    policy: Optional[Any] = None
    report_options: Dict[str, Any] = field(default_factory=dict)
    report: Optional[Any] = None
    stages: List[StageTiming] = field(default_factory=list)


def _run_parse(ctx: PipelineContext) -> Any:
    return parse_program(ctx.source)


def _run_elaborate(ctx: PipelineContext) -> Design:
    return elaborate(ctx.program, ctx.options.entity)


def _run_cfg(ctx: PipelineContext) -> Any:
    return build_cfg(ctx.design, loop_processes=ctx.options.loop_processes)


def _run_active(ctx: PipelineContext) -> Any:
    return analyze_all_active_signals(ctx.program_cfg.processes)


def _run_reaching(ctx: PipelineContext) -> Any:
    return analyze_reaching_definitions(
        ctx.program_cfg,
        ctx.active,
        use_under_approximation=ctx.options.use_under_approximation,
    )


def _run_local(ctx: PipelineContext) -> Any:
    return local_resource_matrix(ctx.program_cfg, universe=ctx.universe)


def _run_specialize(ctx: PipelineContext) -> Any:
    return specialize(ctx.program_cfg, ctx.rm_local, ctx.active, ctx.reaching)


def _run_closure(ctx: PipelineContext) -> Any:
    if ctx.options.improved:
        return improved_global_resource_matrix(
            ctx.program_cfg, ctx.rm_local, ctx.specialized, ctx.design
        )
    return global_resource_matrix(ctx.program_cfg, ctx.rm_local, ctx.specialized)


def _run_flow_graph(ctx: PipelineContext) -> FlowGraph:
    return FlowGraph.from_resource_matrix(ctx.closure.rm_global)


def _run_kemmerer(ctx: PipelineContext) -> Any:
    return kemmerer_analysis(ctx.program_cfg, universe=ctx.universe)


def _run_lint(ctx: PipelineContext) -> Any:
    # Imported lazily: the lint package imports repro.security.report, which
    # imports repro.analysis.api, which itself imports this package.
    from repro.analysis.lint import run_lint_rules

    return run_lint_rules(ctx.analysis)


def _run_report(ctx: PipelineContext) -> Any:
    # Imported lazily: repro.security.report imports repro.analysis.api,
    # which itself imports this package.
    from repro.security.report import build_report

    return build_report(ctx.analysis, ctx.policy, **ctx.report_options)


@dataclass(frozen=True)
class Stage:
    """One named pipeline step.

    ``option_fields`` lists the :class:`AnalysisOptions` fields the stage's
    artefact depends on — they (with the source hash and the stage name) form
    the cache key.  ``universe_bound`` marks artefacts encoded against the
    session universe; they are cached together with it.
    """

    name: str
    attr: str
    run: Callable[[PipelineContext], Any]
    option_fields: Tuple[str, ...] = ()
    universe_bound: bool = False
    cacheable: bool = True


_ENTITY = ("entity",)
_SHAPE = ("entity", "loop_processes")
_RD = ("entity", "loop_processes", "use_under_approximation")
_ALL = ("entity", "loop_processes", "use_under_approximation", "improved")

PARSE = Stage("parse", "program", _run_parse)
ELABORATE = Stage("elaborate", "design", _run_elaborate, _ENTITY)
CFG = Stage("cfg", "program_cfg", _run_cfg, _SHAPE)
ACTIVE = Stage("active", "active", _run_active, _SHAPE)
REACHING = Stage("reaching", "reaching", _run_reaching, _RD)
LOCAL = Stage("local", "rm_local", _run_local, _SHAPE, universe_bound=True)
SPECIALIZE = Stage("specialize", "specialized", _run_specialize, _RD, universe_bound=True)
CLOSURE = Stage("closure", "closure", _run_closure, _ALL, universe_bound=True)
FLOW_GRAPH = Stage("flow_graph", "graph", _run_flow_graph, _ALL, universe_bound=True)
LINT = Stage("lint", "lint", _run_lint, _ALL)
KEMMERER = Stage("kemmerer", "kemmerer", _run_kemmerer, _SHAPE, universe_bound=True)
REPORT = Stage("report", "report", _run_report, cacheable=False)

#: The full analysis, source to flow graph (plus the optional report).
ANALYSIS_STAGES: Tuple[Stage, ...] = (
    PARSE,
    ELABORATE,
    CFG,
    ACTIVE,
    REACHING,
    LOCAL,
    SPECIALIZE,
    CLOSURE,
    FLOW_GRAPH,
    REPORT,
)

#: The lint run: the full analysis plus the cached ``lint`` stage (and, when
#: a policy with level assignments is given, the trailing report).
LINT_STAGES: Tuple[Stage, ...] = ANALYSIS_STAGES[:-1] + (LINT, REPORT)

#: Kemmerer's baseline shares the frontend stages.
KEMMERER_STAGES: Tuple[Stage, ...] = (PARSE, ELABORATE, CFG, KEMMERER)

STAGE_NAMES: Tuple[str, ...] = tuple(stage.name for stage in ANALYSIS_STAGES)


#: Stages whose artefacts are produced by a selectable bitset backend
#: (:mod:`repro.dataflow.bitset`); the active backend is part of their cache
#: key so artefacts can never be served across a backend switch.  The
#: backends are cross-checked byte-identical, so this is defence in depth
#: for the content-address contract, not a correctness requirement.
_BACKEND_KEYED = frozenset({"closure", "flow_graph"})


def stage_key(stage: Stage, source_key: str, options: AnalysisOptions) -> str:
    """The content address of one stage artefact.

    A stage with no ``option_fields`` keys on its name and the source hash
    alone — the ``parse`` artefact is deliberately option- *and*
    entity-independent (``parse:<sha256>``), so one parse serves every
    entity/option configuration of a file; the batch driver and the serve
    pool rely on this to share parses across jobs on the same source.
    """
    parts = [stage.name, source_key]
    if stage.option_fields:
        parts.extend(
            f"{name}={getattr(options, name)!r}" for name in stage.option_fields
        )
    if stage.name in _BACKEND_KEYED:
        parts.append(f"backend={bitset.backend_for(stage.name)}")
    return ":".join(parts)


class Pipeline:
    """Runs the staged analysis, optionally over a shared artifact cache.

    One :class:`Pipeline` can serve many runs; pass an
    :class:`~repro.pipeline.cache.ArtifactCache` to reuse artefacts across
    them.  Without a cache every run computes everything (this is what the
    thin :func:`repro.analysis.api.analyze` wrappers do, preserving their
    one-universe-per-call semantics).
    """

    #: How many hot spots a profiled stage keeps (by internal time).
    PROFILE_TOP_N = 15

    def __init__(self, cache: Optional[ArtifactCache] = None):
        self.cache = cache

    # ------------------------------------------------------------- entry points

    def run(
        self,
        source: str,
        options: Optional[AnalysisOptions] = None,
        *,
        universe: Optional[FactUniverse] = None,
        until: Optional[str] = None,
        policy: Optional[Any] = None,
        report_options: Optional[Dict[str, Any]] = None,
        profile: bool = False,
    ) -> PipelineResult:
        """Analyse VHDL1 source text, stage by stage.

        ``until`` names the last stage to run (``"cfg"`` stops after the CFG
        is built).  ``policy`` enables the final ``report`` stage;
        ``report_options`` passes keyword arguments through to
        :func:`repro.security.report.build_report`.  ``profile=True`` runs
        every computed stage under cProfile and attaches the per-stage hot
        spots to the result (:attr:`PipelineResult.stage_profiles`); the
        reported wall-clock timings then include profiler overhead.
        """
        ctx = self._context(options, universe)
        ctx.source = source
        ctx.source_key = source_digest(source)
        self._set_policy(ctx, policy, report_options)
        return self._execute(ctx, ANALYSIS_STAGES, until, profile=profile)

    def run_design(
        self,
        design: Design,
        options: Optional[AnalysisOptions] = None,
        *,
        universe: Optional[FactUniverse] = None,
        until: Optional[str] = None,
        policy: Optional[Any] = None,
        report_options: Optional[Dict[str, Any]] = None,
    ) -> PipelineResult:
        """Analyse an already-elaborated design (frontend stages skipped).

        Without source text there is no content address, so these runs do not
        touch the artifact cache.
        """
        ctx = self._context(options, universe)
        ctx.design = design
        self._set_policy(ctx, policy, report_options)
        return self._execute(ctx, ANALYSIS_STAGES[2:], until)

    def run_lint(
        self,
        source: str,
        options: Optional[AnalysisOptions] = None,
        *,
        universe: Optional[FactUniverse] = None,
        policy: Optional[Any] = None,
        report_options: Optional[Dict[str, Any]] = None,
        profile: bool = False,
    ) -> PipelineResult:
        """Run the full analysis plus the cached ``lint`` stage.

        The lint artefact (``run.artifacts.lint``) is the complete rule
        catalog's finding tuple at default severities; rule selection and
        severity overrides (a policy file's ``[lint]`` table) are applied by
        the caller, outside the content-addressed stage.  ``policy`` behaves
        as in :meth:`run` (it additionally enables the report stage);
        ``profile`` as in :meth:`run`.
        """
        ctx = self._context(options, universe)
        ctx.source = source
        ctx.source_key = source_digest(source)
        self._set_policy(ctx, policy, report_options)
        return self._execute(ctx, LINT_STAGES, None, profile=profile)

    def run_kemmerer(
        self,
        source: str,
        options: Optional[AnalysisOptions] = None,
        *,
        universe: Optional[FactUniverse] = None,
    ) -> PipelineResult:
        """Run Kemmerer's baseline (parse → elaborate → cfg → kemmerer)."""
        ctx = self._context(options, universe)
        ctx.source = source
        ctx.source_key = source_digest(source)
        return self._execute(ctx, KEMMERER_STAGES, None)

    def run_kemmerer_design(
        self,
        design: Design,
        options: Optional[AnalysisOptions] = None,
        *,
        universe: Optional[FactUniverse] = None,
    ) -> PipelineResult:
        """Kemmerer's baseline on an already-elaborated design."""
        ctx = self._context(options, universe)
        ctx.design = design
        return self._execute(ctx, KEMMERER_STAGES[2:], None)

    # ---------------------------------------------------------------- internals

    @staticmethod
    def _context(
        options: Optional[AnalysisOptions], universe: Optional[FactUniverse]
    ) -> PipelineContext:
        return PipelineContext(
            options=options if options is not None else AnalysisOptions(),
            universe=universe if universe is not None else FactUniverse(),
            universe_pinned=universe is not None,
        )

    @staticmethod
    def _set_policy(
        ctx: PipelineContext,
        policy: Optional[Any],
        report_options: Optional[Dict[str, Any]],
    ) -> None:
        ctx.policy = policy
        ctx.report_options = dict(report_options or {})

    def _execute(
        self,
        ctx: PipelineContext,
        stages: Sequence[Stage],
        until: Optional[str],
        profile: bool = False,
    ) -> PipelineResult:
        plan = list(stages)
        if until is not None:
            names = [stage.name for stage in plan]
            if until not in names:
                raise AnalysisError(
                    f"unknown pipeline stage {until!r}; expected one of "
                    + ", ".join(names)
                )
            plan = plan[: names.index(until) + 1]
        if ctx.policy is None and plan and plan[-1] is REPORT:
            plan = plan[:-1]

        for stage in plan:
            self._run_stage(ctx, stage, profile=profile)
            if stage is FLOW_GRAPH:
                ctx.analysis = self._assemble(ctx)

        return PipelineResult(
            options=ctx.options,
            stages=ctx.stages,
            result=ctx.analysis,
            kemmerer=ctx.kemmerer,
            report=ctx.report,
            artifacts=ctx,
        )

    def _run_stage(
        self, ctx: PipelineContext, stage: Stage, profile: bool = False
    ) -> None:
        key = None
        if (
            self.cache is not None
            and stage.cacheable
            and ctx.source_key is not None
            and not (stage.universe_bound and ctx.universe_pinned)
        ):
            key = stage_key(stage, ctx.source_key, ctx.options)
            cached = self.cache.get(key)
            if cached is not None and stage.universe_bound:
                # All universe-bound artefacts of one run must share one
                # universe.  Once the run's universe is fixed (an earlier
                # universe-bound stage computed fresh, or adopted a cached
                # universe), a surviving entry built against a *different*
                # universe — possible after partial eviction — is unusable
                # here: using it would assemble a mixed-universe result.
                _, cached_universe = cached
                if ctx.universe_locked and cached_universe is not ctx.universe:
                    cached = None
                    self.cache.hits -= 1
                    self.cache.misses += 1
            if cached is not None:
                started = time.perf_counter()
                if stage.universe_bound:
                    artifact, universe = cached
                    ctx.universe = universe
                    ctx.universe_locked = True
                else:
                    artifact = cached
                setattr(ctx, stage.attr, artifact)
                ctx.stages.append(
                    StageTiming(stage.name, time.perf_counter() - started, cached=True)
                )
                return

        stage_profile = None
        started = time.perf_counter()
        if profile:
            artifact, stage_profile = self._run_profiled(ctx, stage)
        else:
            artifact = stage.run(ctx)
        elapsed = time.perf_counter() - started
        setattr(ctx, stage.attr, artifact)
        if stage.universe_bound:
            ctx.universe_locked = True
        if key is not None:
            value = (artifact, ctx.universe) if stage.universe_bound else artifact
            self.cache.put(key, value)
        ctx.stages.append(
            StageTiming(stage.name, elapsed, cached=False, profile=stage_profile)
        )

    @classmethod
    def _run_profiled(
        cls, ctx: PipelineContext, stage: Stage
    ) -> Tuple[Any, Tuple[Dict[str, Any], ...]]:
        """Run one stage under cProfile; return (artifact, top-N hot spots)."""
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            artifact = stage.run(ctx)
        finally:
            profiler.disable()
        stats = pstats.Stats(profiler)
        entries = []
        for func, (_, ncalls, tottime, cumtime, _) in stats.stats.items():
            filename, lineno, name = func
            if name == "<built-in method builtins.exec>":
                continue
            entries.append(
                {
                    "function": f"{filename}:{lineno}({name})",
                    "calls": ncalls,
                    "tottime": round(tottime, 6),
                    "cumtime": round(cumtime, 6),
                }
            )
        entries.sort(key=lambda item: item["tottime"], reverse=True)
        return artifact, tuple(entries[: cls.PROFILE_TOP_N])

    @staticmethod
    def _assemble(ctx: PipelineContext) -> AnalysisResult:
        return AnalysisResult(
            design=ctx.design,
            program_cfg=ctx.program_cfg,
            active=ctx.active,
            reaching=ctx.reaching,
            rm_local=ctx.rm_local,
            specialized=ctx.specialized,
            rm_global=ctx.closure.rm_global,
            graph=ctx.graph,
            improved=ctx.options.improved,
            outgoing_labels=getattr(ctx.closure, "outgoing_labels", {}),
            universe=ctx.universe,
        )
