"""The staged analysis pipeline, its artifact cache and the batch driver.

This package is the deployment surface the high-level API promises: the
monolithic analysis is decomposed into named, individually invokable and
individually timed stages (:mod:`repro.pipeline.stages`), backed by a
content-addressed artifact cache (:mod:`repro.pipeline.cache`), rendered for
humans and machines (:mod:`repro.pipeline.render`) and driven over many
designs at once, sequentially or in parallel (:mod:`repro.pipeline.batch`).

The legacy entry points (:func:`repro.analysis.api.analyze` and friends) are
thin wrappers over :class:`Pipeline` with unchanged behaviour.
"""

from repro.pipeline.artifacts import (
    AnalysisOptions,
    AnalysisResult,
    PipelineResult,
    StageTiming,
)
from repro.pipeline.batch import (
    BatchItem,
    BatchJob,
    BatchReport,
    entities_in,
    expand_jobs,
    run_batch,
    run_job,
)
from repro.pipeline.cache import (
    ArtifactCache,
    DiskArtifactCache,
    TieredArtifactCache,
    open_cache,
    source_digest,
)
from repro.pipeline.render import (
    analysis_json,
    analyze_document,
    check_document,
    json_text,
    render_analysis_text,
    report_json,
    select_graph,
)
from repro.pipeline.serve import AnalysisServer, ServerThread, serve
from repro.pipeline.stages import (
    ANALYSIS_STAGES,
    KEMMERER_STAGES,
    STAGE_NAMES,
    Pipeline,
    PipelineContext,
    Stage,
    stage_key,
)

__all__ = [
    "ANALYSIS_STAGES",
    "AnalysisOptions",
    "AnalysisResult",
    "AnalysisServer",
    "ArtifactCache",
    "BatchItem",
    "BatchJob",
    "BatchReport",
    "DiskArtifactCache",
    "KEMMERER_STAGES",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "STAGE_NAMES",
    "ServerThread",
    "Stage",
    "StageTiming",
    "TieredArtifactCache",
    "analysis_json",
    "analyze_document",
    "check_document",
    "entities_in",
    "expand_jobs",
    "json_text",
    "open_cache",
    "render_analysis_text",
    "report_json",
    "run_batch",
    "run_job",
    "select_graph",
    "serve",
    "source_digest",
    "stage_key",
]
