"""The staged analysis pipeline, its artifact cache and the batch driver.

This package is the deployment surface the high-level API promises: the
monolithic analysis is decomposed into named, individually invokable and
individually timed stages (:mod:`repro.pipeline.stages`), backed by a
content-addressed artifact cache (:mod:`repro.pipeline.cache`), rendered for
humans and machines (:mod:`repro.pipeline.render`) and driven over many
designs at once, sequentially or in parallel (:mod:`repro.pipeline.batch`).
The serve mode (:mod:`repro.pipeline.serve`) runs analyses on a supervised
worker pool (:mod:`repro.pipeline.pool`) whose fault behaviour is
deterministically testable via :mod:`repro.pipeline.faults`.

The legacy entry points (:func:`repro.analysis.api.analyze` and friends) are
thin wrappers over :class:`Pipeline` with unchanged behaviour.
"""

from repro.pipeline.artifacts import (
    AnalysisOptions,
    AnalysisResult,
    PipelineResult,
    StageTiming,
)
from repro.pipeline.batch import (
    BatchItem,
    BatchJob,
    BatchReport,
    entities_in,
    expand_jobs,
    run_batch,
    run_job,
)
from repro.pipeline.cache import (
    ArtifactCache,
    DiskArtifactCache,
    TieredArtifactCache,
    open_cache,
    source_digest,
)
from repro.pipeline.faults import FaultInjector, FaultPlan
from repro.pipeline.pool import PoolResult, WorkerPool
from repro.pipeline.render import (
    SCHEMA_VERSION,
    analysis_json,
    analyze_document,
    check_document,
    json_text,
    lint_document,
    lint_json,
    lint_section,
    policy_summary,
    render_analysis_text,
    render_lint_text,
    report_json,
    schema_v1,
    select_graph,
    stamped,
    version_document,
    volatile_pointers,
)
from repro.pipeline.serve import AnalysisServer, ServerThread, interaction_id, serve
from repro.pipeline.stages import (
    ANALYSIS_STAGES,
    KEMMERER_STAGES,
    LINT_STAGES,
    STAGE_NAMES,
    Pipeline,
    PipelineContext,
    Stage,
    stage_key,
)

__all__ = [
    "ANALYSIS_STAGES",
    "SCHEMA_VERSION",
    "AnalysisOptions",
    "AnalysisResult",
    "AnalysisServer",
    "ArtifactCache",
    "BatchItem",
    "BatchJob",
    "BatchReport",
    "DiskArtifactCache",
    "FaultInjector",
    "FaultPlan",
    "KEMMERER_STAGES",
    "LINT_STAGES",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "PoolResult",
    "STAGE_NAMES",
    "ServerThread",
    "WorkerPool",
    "Stage",
    "StageTiming",
    "TieredArtifactCache",
    "analysis_json",
    "analyze_document",
    "check_document",
    "entities_in",
    "expand_jobs",
    "interaction_id",
    "json_text",
    "lint_document",
    "lint_json",
    "lint_section",
    "open_cache",
    "policy_summary",
    "render_analysis_text",
    "render_lint_text",
    "report_json",
    "run_batch",
    "run_job",
    "schema_v1",
    "select_graph",
    "serve",
    "source_digest",
    "stage_key",
    "stamped",
    "version_document",
    "volatile_pointers",
]
