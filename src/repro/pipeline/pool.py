"""The supervised analysis worker pool behind ``vhdl-ifa serve``.

``concurrent.futures.ProcessPoolExecutor`` cannot cancel a running task or
survive a killed worker without poisoning the whole pool, so the server uses
its own, deliberately small supervisor: one :class:`WorkerHandle` per slot,
each owning a dedicated ``multiprocessing`` pipe to a long-lived worker
process.  The supervisor's contract is the server's fault model:

* a request that exceeds its wall-clock ``timeout`` gets the worker killed
  and respawned — the *request* fails (a structured 5xx upstream), the
  *service* does not;
* a worker that dies mid-request (crash, OOM kill) is detected by the broken
  pipe, respawned, and only that request fails;
* the pool never propagates worker death to the caller as an exception; every
  :meth:`WorkerPool.run` returns a :class:`PoolResult`.

Workers are spawned (not forked): the server runs the pool from a threaded
asyncio process, where forking is unsafe, and a spawn also guarantees each
worker arms its own :mod:`repro.pipeline.faults` plan deterministically.
Each worker builds one :class:`repro.workspace.Workspace` over the shared
``cache_dir`` disk tier (its in-memory tier is per-worker), so all workers
serve warm artifacts out of one store — the same layering the batch driver
uses.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.pipeline.faults import FaultInjector, FaultPlan

#: Spawned, not forked: safe under threads, and a clean slate per worker.
_CTX = multiprocessing.get_context("spawn")

#: Seconds a worker gets to exit voluntarily before the supervisor kills it.
_STOP_GRACE = 2.0


@dataclass
class PoolResult:
    """The outcome of one pooled request — never an exception.

    ``status``/``document`` are the HTTP answer the server relays.
    ``timed_out``/``crashed`` record the fault (the worker was recycled);
    ``meta`` is the worker's self-report (cache counters, fault triggers).
    """

    status: int
    document: Dict[str, Any]
    worker: int = -1
    timed_out: bool = False
    crashed: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)


def _worker_main(
    conn: Any,
    cache_dir: Optional[str],
    no_cache: bool,
    fault_plan: Optional[FaultPlan],
) -> None:
    """One worker: build a workspace once, answer requests until EOF.

    The request protocol is ``(kind, request_dict)`` in,
    ``(status, document, meta)`` out; ``None`` in means drain and exit.
    Analysis errors are classified here exactly as the inline server path
    classifies them, so pooled responses are byte-identical to inline ones.
    """
    # Imported here: the worker entry point must be importable by the spawn
    # machinery without dragging the whole toolchain in at module level.
    from repro.pipeline.cache import open_cache
    from repro.pipeline.serve import execute_request
    from repro.workspace import Workspace

    injector = FaultInjector(fault_plan) if fault_plan is not None else FaultInjector.from_env()
    cache = None if no_cache else open_cache(cache_dir)
    cache = injector.wrap_cache(cache)
    workspace = Workspace(cache=cache)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        kind, request = message
        status, document = execute_request(workspace, kind, request, injector)
        meta: Dict[str, Any] = {"pid": os.getpid(), "faults_fired": injector.fired}
        if workspace.cache is not None:
            stats = workspace.cache.stats()
            meta["cache"] = {
                "hits": stats.get("hits", 0),
                "misses": stats.get("misses", 0),
            }
        try:
            conn.send((status, document, meta))
        except (BrokenPipeError, OSError):
            break


class WorkerTimeout(Exception):
    """Internal: the request exceeded its wall-clock budget."""


class WorkerCrash(Exception):
    """Internal: the worker process died before answering."""


class WorkerHandle:
    """One supervised worker slot: a process, its pipe, and respawn logic."""

    def __init__(
        self,
        index: int,
        cache_dir: Optional[str],
        no_cache: bool,
        fault_plan: Optional[FaultPlan],
    ):
        self.index = index
        self.restarts = 0
        self._spec = (cache_dir, no_cache, fault_plan)
        self._process: Optional[Any] = None
        self._conn: Optional[Any] = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = _CTX.Pipe()
        process = _CTX.Process(
            target=_worker_main,
            args=(child_conn, *self._spec),
            name=f"vhdl-ifa-worker-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def call(
        self, message: Any, timeout: Optional[float]
    ) -> Tuple[int, Dict[str, Any], Dict[str, Any]]:
        """Round-trip one request; raises :class:`WorkerTimeout` /
        :class:`WorkerCrash` after recycling the worker."""
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError):
            self.recycle()
            raise WorkerCrash(f"worker {self.index} was dead before the request")
        try:
            if not self._conn.poll(timeout):
                self.recycle()
                raise WorkerTimeout(
                    f"worker {self.index} exceeded the {timeout:g}s budget"
                )
            return self._conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            self.recycle()
            raise WorkerCrash(f"worker {self.index} died mid-request")

    def recycle(self) -> None:
        """Kill the current process (if any) and spawn a replacement."""
        self._shutdown(kill=True)
        self.restarts += 1
        self._spawn()

    def stop(self) -> None:
        """Drain politely, then make sure the process is gone."""
        self._shutdown(kill=False)

    def _shutdown(self, kill: bool) -> None:
        process, conn = self._process, self._conn
        self._process = self._conn = None
        if conn is not None:
            if not kill:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:
                pass
        if process is None:
            return
        if kill:
            process.kill()
            process.join(_STOP_GRACE)
        else:
            process.join(_STOP_GRACE)
            if process.is_alive():
                process.kill()
                process.join(_STOP_GRACE)
        # Release the process object's pipe/semaphore resources promptly.
        process.close()


class WorkerPool:
    """A fixed-size pool of supervised workers with a thread-safe free list.

    Callers (the server's executor threads) check a handle out, run exactly
    one request on it, and check it back in — :meth:`run` does all three and
    translates worker faults into :class:`PoolResult` fields instead of
    exceptions.  ``timeout`` is the per-request wall-clock budget; ``None``
    waits forever (no recycling on slow requests).
    """

    def __init__(
        self,
        size: int,
        *,
        cache_dir: Optional[str] = None,
        no_cache: bool = False,
        timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self.timeout = timeout
        self._handles = [
            WorkerHandle(index, cache_dir, no_cache, fault_plan)
            for index in range(size)
        ]
        self._free: "queue.Queue[WorkerHandle]" = queue.Queue()
        for handle in self._handles:
            self._free.put(handle)
        self._stopped = threading.Event()

    # ------------------------------------------------------------------ state

    @property
    def restarts(self) -> int:
        """Total worker respawns over the pool's lifetime."""
        return sum(handle.restarts for handle in self._handles)

    @property
    def alive(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for handle in self._handles if handle.alive)

    # ------------------------------------------------------------------- run

    def run(self, kind: str, request: Dict[str, Any]) -> PoolResult:
        """Run one request on the next free worker (blocking; call from a
        thread, not the event loop)."""
        if self._stopped.is_set():
            return PoolResult(
                status=503, document={"error": "server is shutting down"}
            )
        handle = self._free.get()
        try:
            try:
                status, document, meta = handle.call((kind, request), self.timeout)
                return PoolResult(
                    status=status, document=document, worker=handle.index, meta=meta
                )
            except WorkerTimeout:
                return PoolResult(
                    status=504,
                    document={
                        "error": (
                            f"analysis exceeded the {self.timeout:g}s request "
                            "budget; the worker was recycled"
                        )
                    },
                    worker=handle.index,
                    timed_out=True,
                )
            except WorkerCrash:
                return PoolResult(
                    status=500,
                    document={
                        "error": (
                            "analysis worker died mid-request; "
                            "the worker was recycled"
                        )
                    },
                    worker=handle.index,
                    crashed=True,
                )
        finally:
            self._free.put(handle)

    # ------------------------------------------------------------------ stop

    def stop(self) -> None:
        """Stop every worker; the pool answers 503 from then on."""
        self._stopped.set()
        for handle in self._handles:
            handle.stop()

    def stats(self) -> Dict[str, Any]:
        return {
            "configured": self.size,
            "alive": self.alive,
            "restarts": self.restarts,
            "timeout_seconds": self.timeout,
        }
