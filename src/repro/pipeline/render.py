"""Render pipeline results as the CLI's text and ``--json`` documents.

Inputs are finished :class:`~repro.pipeline.artifacts.PipelineResult` /
:class:`~repro.pipeline.artifacts.AnalysisResult` objects; outputs are the
user-facing renderings.  Both the ``vhdl-ifa analyze`` command and the batch
driver go through :func:`render_analysis_text`, so a batch run's per-file
output is byte-identical to the sequential command by construction.  The
JSON builders return plain dicts (stable key order, only JSON-native types),
shared by ``--json`` on ``analyze``/``check``/``batch``;
:func:`analyze_document` / :func:`check_document` / :func:`json_text` are
the complete documents, shared by the CLI and ``vhdl-ifa serve`` — which is
why a server response is byte-identical to the corresponding CLI output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.pipeline.artifacts import AnalysisResult, PipelineResult
from repro.version import version

#: The versioned contract stamped (as ``"schema"``, always the first key) on
#: every JSON document the toolchain emits — CLI ``--json`` bodies, batch
#: documents, every serve-mode response.  Bumped only on breaking changes;
#: ``make schema`` gates the committed ``docs/schema_v1.json`` against
#: :func:`schema_v1`.
SCHEMA_VERSION = "vhdl-ifa/v1"


def stamped(document: Dict[str, Any]) -> Dict[str, Any]:
    """``document`` with the ``"schema"`` version as its first key."""
    if document.get("schema") == SCHEMA_VERSION:
        return document
    return {"schema": SCHEMA_VERSION, **document}


def select_graph(result: AnalysisResult, collapse: bool, self_loops: bool):
    """Apply the CLI's graph-shaping flags (shared by analyze/kemmerer/batch)."""
    graph = result.graph if self_loops else result.graph.without_self_loops()
    if collapse:
        graph = graph.collapse_environment_nodes()
    return graph


def render_adjacency(graph: Any) -> List[str]:
    """The CLI's adjacency-list rendering, one line per node."""
    return [
        f"  {node} -> {', '.join(successors) if successors else '(none)'}"
        for node, successors in graph.to_adjacency().items()
    ]


def render_analysis_text(
    result: AnalysisResult,
    collapse: bool = False,
    self_loops: bool = False,
    dot: bool = False,
    graph: Optional[Any] = None,
) -> str:
    """Exactly what ``vhdl-ifa analyze`` prints for one design.

    ``graph`` optionally supplies an already-shaped graph (the result of
    :func:`select_graph` with the same flags), so callers rendering both text
    and JSON shape it only once.
    """
    if graph is None:
        graph = select_graph(result, collapse, self_loops)
    lines = [result.summary()]
    if dot:
        lines.append(graph.to_dot())
    else:
        lines.extend(render_adjacency(graph))
    return "\n".join(lines)


def _round_timings(pipeline: PipelineResult) -> Dict[str, float]:
    return {name: round(seconds, 6) for name, seconds in pipeline.timings.items()}


def analysis_json(
    pipeline: PipelineResult,
    collapse: bool = False,
    self_loops: bool = False,
    file: Optional[str] = None,
    graph: Optional[Any] = None,
) -> Dict[str, Any]:
    """The machine-readable summary of one analysis run.

    Contains the design inventory, the (flag-shaped) adjacency, per-stage
    wall-clock timings and which stages were served from the artifact cache.
    ``graph`` optionally supplies an already-shaped graph, as in
    :func:`render_analysis_text`.
    """
    result = pipeline.result
    if graph is None:
        graph = select_graph(result, collapse, self_loops)
    cfg_stats = result.program_cfg.summary()
    document: Dict[str, Any] = {}
    if file is not None:
        document["file"] = file
    document.update(
        {
            "design": result.design.name,
            "options": {
                "entity": pipeline.options.entity,
                "improved": pipeline.options.improved,
                "loop_processes": pipeline.options.loop_processes,
                "use_under_approximation": pipeline.options.use_under_approximation,
            },
            "summary": {
                **cfg_stats,
                "local_entries": len(result.rm_local),
                "global_entries": len(result.rm_global),
                "nodes": graph.node_count(),
                "edges": graph.edge_count(),
            },
            "graph": {
                "collapse": collapse,
                "self_loops": self_loops,
                "adjacency": graph.to_adjacency(),
            },
            "timings": _round_timings(pipeline),
            "cached_stages": pipeline.cached_stages,
        }
    )
    return document


def report_json(pipeline: PipelineResult, file: Optional[str] = None) -> Dict[str, Any]:
    """The machine-readable form of a ``check`` run (analysis + verdict)."""
    document: Dict[str, Any] = {}
    if file is not None:
        document["file"] = file
    document.update(pipeline.report.to_json_dict())
    document["timings"] = _round_timings(pipeline)
    document["cached_stages"] = pipeline.cached_stages
    return document


def lint_section(findings: Sequence[Any]) -> Dict[str, Any]:
    """The shared lint body: verdict, findings and severity counters.

    ``findings`` are :class:`~repro.security.report.Diagnostic` records with
    any policy selection/overrides already applied.  The CLI ``lint --json``
    document, the batch per-job ``lint`` section and the ``POST /lint``
    response all embed exactly this dict, which is what makes the three
    byte-comparable.  (Takes plain diagnostics rather than importing the lint
    package: render is imported by the pipeline package the lint rules
    ultimately depend on.)
    """
    summary = {"findings": len(findings), "errors": 0, "warnings": 0, "infos": 0}
    for finding in findings:
        summary[finding.severity + "s"] += 1
    return {
        "clean": not findings,
        "findings": [finding.to_dict() for finding in findings],
        "summary": summary,
    }


def lint_json(
    pipeline: PipelineResult,
    findings: Sequence[Any],
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The machine-readable form of a ``lint`` run."""
    document: Dict[str, Any] = {}
    if file is not None:
        document["file"] = file
    document["design"] = pipeline.result.design.name
    document.update(lint_section(findings))
    document["timings"] = _round_timings(pipeline)
    document["cached_stages"] = pipeline.cached_stages
    return document


def lint_document(
    pipeline: PipelineResult,
    findings: Sequence[Any],
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete ``lint --json`` document (CLI and server share it)."""
    return stamped(
        {
            "command": "lint",
            **lint_json(pipeline, findings, file=file),
        }
    )


def render_lint_text(design_name: str, findings: Sequence[Any]) -> str:
    """Exactly what ``vhdl-ifa lint`` prints for one design."""
    lines = [f"Lint report for design {design_name!r}"]
    if not findings:
        lines.append("No findings.")
    else:
        lines.append(f"{len(findings)} finding(s):")
        for finding in findings:
            lines.append(f"  - {finding.severity}: {finding.describe()}")
    return "\n".join(lines)


def policy_summary(policy: Any) -> Dict[str, Any]:
    """The ``"policy"`` member of a ``check`` document.

    Two-level policies keep their compact historical form (the sorted secret
    list); every other policy is rendered as its full declarative document,
    so a check driven by a policy file echoes the policy it enforced.
    """
    secrets = getattr(policy, "secret_resources", None)
    if secrets is not None:
        return {"secrets": sorted(secrets)}
    # Imported lazily: repro.security pulls in repro.analysis.api, which
    # imports this package (the same cycle the pipeline's report stage breaks).
    from repro.security.policy_file import policy_to_dict

    return policy_to_dict(policy)


def analyze_document(
    pipeline: PipelineResult,
    collapse: bool = False,
    self_loops: bool = False,
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete ``analyze --json`` document (CLI and server share it)."""
    return stamped(
        {
            "command": "analyze",
            **analysis_json(
                pipeline, collapse=collapse, self_loops=self_loops, file=file
            ),
        }
    )


def check_document(
    pipeline: PipelineResult,
    policy: Any,
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete ``check --json`` document (CLI and server share it)."""
    return stamped(
        {
            "command": "check",
            **report_json(pipeline, file=file),
            "policy": policy_summary(policy),
        }
    )


def version_document() -> Dict[str, Any]:
    """The ``GET /version`` document (package metadata version)."""
    return stamped({"command": "version", "version": version()})


#: Volatile-field matcher rules shared by every analysis-style document.
#: ``/file`` is the caller-supplied path (absolute and run-dependent under
#: the CLI, ``null`` for ``source`` requests — a null is simply not masked).
_ANALYSIS_VOLATILE = {
    "/timings": "object",
    "/cached_stages": "array",
    "/file": "string",
}


def volatile_pointers(command: str) -> Dict[str, str]:
    """The authoritative matcher table of one document kind.

    Maps each ``command`` value a v1 document can carry to the JSON-pointer
    → JSON-type rules declaring which of its fields are run-dependent
    (wall-clock timings, cache state, absolute paths, uptime, counters,
    latency histograms).  The contract recorder (:mod:`repro.contract`)
    stamps these rules into every recorded interaction, and the verifier
    masks both the recording and the live response with them — everything
    *not* listed here is pinned byte-for-byte by the corpus.
    """
    if command in ("analyze", "kemmerer", "check", "lint"):
        return dict(_ANALYSIS_VOLATILE)
    if command == "batch":
        # Batch jobs inline the per-job analyze/check/lint document, so the
        # analysis volatiles recur one level down, plus per-job wall clocks.
        return {
            "/elapsed": "number",
            "/jobs/*/file": "string",
            "/jobs/*/seconds": "number",
            "/jobs/*/timings": "object",
            "/jobs/*/cached_stages": "array",
        }
    if command == "policy":
        return {}
    if command == "version":
        # The package version moves on every release; the *shape* is the
        # contract, enforced separately via the schema stamp.
        return {"/version": "string"}
    if command == "stats":
        return {
            "/uptime_seconds": "number",
            "/requests": "object",
            "/policies": "array",
            "/cache": "object",
        }
    if command == "healthz":
        return {"/workers": "object"}
    if command == "metrics":
        return {
            "/uptime_seconds": "number",
            "/requests": "object",
            "/cache": "object",
            "/latency": "object",
            "/workers": "object",
        }
    if command == "error":
        return {}
    raise ValueError(f"no matcher table for document kind {command!r}")


def json_text(document: Dict[str, Any]) -> str:
    """One canonical JSON serialisation, shared by the CLI and the server.

    Both ``vhdl-ifa analyze --json`` (via ``print``) and ``vhdl-ifa serve``
    emit exactly this text plus a trailing newline, which is what makes the
    two byte-comparable.
    """
    return json.dumps(document, indent=2, ensure_ascii=False)


def schema_v1() -> Dict[str, Any]:
    """The machine-readable description of every ``vhdl-ifa/v1`` document.

    This is the authoritative statement of the v1 contract: ``make schema``
    (``scripts/dump_schema.py --check``) fails when this function drifts from
    the committed ``docs/schema_v1.json``, so contract changes are always an
    explicit, reviewed diff.  The layout is JSON Schema (draft-07) with one
    definition per document ``command``.
    """
    timings = {
        "type": "object",
        "description": "stage name -> wall-clock seconds, in execution order",
        "additionalProperties": {"type": "number"},
    }
    cached_stages = {
        "type": "array",
        "description": "stages served from the artifact cache, in order",
        "items": {"type": "string"},
    }
    schema_field = {"const": SCHEMA_VERSION}
    diagnostic = {
        "type": "object",
        "description": "one structured finding (policy check or lint rule)",
        "required": [
            "code", "severity", "message", "source", "target",
            "source_level", "target_level", "path",
        ],
        "properties": {
            "code": {
                "type": "string",
                "description": "stable code: IFA001 direct flow, IFA002 path "
                "flow, IFA1xx lint rules (catalog in docs/lint.md)",
                "pattern": "^IFA[0-9]{3}$",
            },
            "severity": {"enum": ["error", "warning", "info"]},
            "message": {"type": "string"},
            "source": {"type": "string"},
            "target": {"type": "string"},
            "source_level": {"type": "string"},
            "target_level": {"type": "string"},
            "path": {"type": "array", "items": {"type": "string"}},
        },
    }
    policy = {
        "type": "object",
        "description": "the enforced policy: secret list or full document",
        "properties": {
            "secrets": {"type": "array", "items": {"type": "string"}},
            "name": {"type": "string"},
            "description": {"type": "string"},
            "mode": {"enum": ["channel-control", "transitive"]},
            "default": {"type": "string"},
            "levels": {"type": "object", "additionalProperties": {"type": "integer"}},
            "resources": {"type": "object", "additionalProperties": {"type": "string"}},
            "allow": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["from", "to"],
                    "properties": {
                        "from": {"type": "string"},
                        "to": {"type": "string"},
                    },
                },
            },
            "lint": {
                "type": "object",
                "description": "lint rule selection and severity overrides",
                "properties": {
                    "enable": {"type": "array", "items": {"type": "string"}},
                    "disable": {"type": "array", "items": {"type": "string"}},
                    "severity": {
                        "type": "object",
                        "additionalProperties": {
                            "enum": ["error", "warning", "info"],
                        },
                    },
                },
            },
        },
    }
    lint_body = {
        "clean": {"type": "boolean"},
        "findings": {
            "type": "array",
            "items": {"$ref": "#/definitions/diagnostic"},
        },
        "summary": {
            "type": "object",
            "required": ["findings", "errors", "warnings", "infos"],
            "additionalProperties": {"type": "integer"},
        },
    }
    lint = {
        "type": "object",
        "required": ["schema", "command", "design", "clean", "findings", "summary"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "lint"},
            "file": {"type": "string"},
            "design": {"type": "string"},
            **lint_body,
            "timings": timings,
            "cached_stages": cached_stages,
        },
    }
    analyze = {
        "type": "object",
        "required": ["schema", "command", "design", "options", "summary", "graph"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "analyze"},
            "file": {"type": "string"},
            "design": {"type": "string"},
            "options": {
                "type": "object",
                "properties": {
                    "entity": {"type": ["string", "null"]},
                    "improved": {"type": "boolean"},
                    "loop_processes": {"type": "boolean"},
                    "use_under_approximation": {"type": "boolean"},
                },
            },
            "summary": {
                "type": "object",
                "additionalProperties": {"type": "integer"},
            },
            "graph": {
                "type": "object",
                "properties": {
                    "collapse": {"type": "boolean"},
                    "self_loops": {"type": "boolean"},
                    "adjacency": {
                        "type": "object",
                        "additionalProperties": {
                            "type": "array", "items": {"type": "string"},
                        },
                    },
                },
            },
            "timings": timings,
            "cached_stages": cached_stages,
        },
    }
    check = {
        "type": "object",
        "required": ["schema", "command", "design", "clean", "violations", "policy"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "check"},
            "file": {"type": "string"},
            "design": {"type": "string"},
            "clean": {"type": "boolean"},
            "violations": {"type": "array", "items": {"$ref": "#/definitions/diagnostic"}},
            "output_dependencies": {
                "type": "object",
                "additionalProperties": {"type": "array", "items": {"type": "string"}},
            },
            "summary": {"type": "object", "additionalProperties": {"type": "integer"}},
            "timings": timings,
            "cached_stages": cached_stages,
            "policy": {"$ref": "#/definitions/policy"},
        },
    }
    batch = {
        "type": "object",
        "required": ["schema", "command", "jobs", "elapsed", "failed"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "batch"},
            "parallel": {"type": "boolean"},
            "workers": {"type": "integer"},
            "policy": {"$ref": "#/definitions/policy"},
            "jobs": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["file", "ok"],
                    "properties": {
                        "file": {"type": "string"},
                        "entity": {"type": ["string", "null"]},
                        "ok": {"type": "boolean"},
                        "seconds": {"type": "number"},
                        "error": {"type": "string"},
                        "error_kind": {"enum": ["analysis", "input", "worker"]},
                        "clean": {"type": "boolean"},
                        "violations": {
                            "type": "array",
                            "items": {"$ref": "#/definitions/diagnostic"},
                        },
                        "lint": {
                            "type": "object",
                            "description": "per-file lint section (batch --lint)",
                            "required": ["clean", "findings", "summary"],
                            "properties": dict(lint_body),
                        },
                    },
                },
            },
            "elapsed": {"type": "number"},
            "failed": {"type": "integer"},
        },
    }
    stats = {
        "type": "object",
        "required": ["schema", "command", "uptime_seconds", "requests"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "stats"},
            "uptime_seconds": {"type": "number"},
            "requests": {"type": "object", "additionalProperties": {"type": "integer"}},
            "policies": {"type": "array", "items": {"type": "string"}},
            "cache": {"type": "object"},
        },
    }
    version_doc = {
        "type": "object",
        "required": ["schema", "command", "version"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "version"},
            "version": {"type": "string"},
        },
    }
    policy_doc = {
        "type": "object",
        "required": ["schema", "command", "valid", "policy"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "policy"},
            "valid": {"const": True},
            "registered": {"type": ["string", "null"]},
            "policy": {"$ref": "#/definitions/policy"},
        },
    }
    cache_stats = {
        "type": "object",
        "required": ["schema", "command", "entries"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "cache-stats"},
            "path": {"type": "string"},
            "version": {"type": "integer"},
            "entries": {"type": "integer"},
            "bytes": {"type": "integer"},
            "max_bytes": {"type": "integer"},
            "universes": {"type": "integer"},
            "hits": {"type": "integer"},
            "misses": {"type": "integer"},
            "stages": {"type": "object", "additionalProperties": {"type": "integer"}},
        },
    }
    error = {
        "type": "object",
        "description": "serve-mode 4xx/5xx body",
        "required": ["schema", "error"],
        "properties": {
            "schema": schema_field,
            "error": {"type": "string"},
            "retry_after": {
                "type": "integer",
                "description": "on a 429, seconds to wait before retrying "
                "(mirrors the Retry-After response header)",
            },
        },
    }
    histogram = {
        "type": "object",
        "description": "a cumulative latency histogram (Prometheus-style le "
        "buckets, upper bounds in seconds)",
        "required": ["count", "sum_seconds", "buckets"],
        "properties": {
            "count": {"type": "integer"},
            "sum_seconds": {"type": "number"},
            "buckets": {
                "type": "object",
                "additionalProperties": {"type": "integer"},
            },
        },
    }
    worker_stats = {
        "type": "object",
        "description": "worker-pool supervision state",
        "properties": {
            "configured": {"type": "integer"},
            "alive": {"type": "integer"},
            "restarts": {"type": "integer"},
            "timeout_seconds": {"type": ["number", "null"]},
        },
    }
    healthz = {
        "type": "object",
        "required": ["schema", "command", "status", "mode"],
        "properties": {
            "schema": schema_field,
            "command": {"const": "healthz"},
            "status": {"enum": ["ok", "draining"]},
            "mode": {"enum": ["pool", "inline"]},
            "workers": worker_stats,
        },
    }
    metrics = {
        "type": "object",
        "required": [
            "schema", "command", "mode", "uptime_seconds", "requests",
            "in_flight", "queue_depth", "shed", "dedup_hits", "timeouts",
            "worker_crashes", "worker_restarts", "latency",
        ],
        "properties": {
            "schema": schema_field,
            "command": {"const": "metrics"},
            "mode": {"enum": ["pool", "inline"]},
            "uptime_seconds": {"type": "number"},
            "requests": {"type": "object", "additionalProperties": {"type": "integer"}},
            "in_flight": {"type": "integer"},
            "queue_depth": {"type": "integer"},
            "shed": {"type": "integer"},
            "dedup_hits": {"type": "integer"},
            "timeouts": {"type": "integer"},
            "worker_crashes": {"type": "integer"},
            "worker_restarts": {"type": "integer"},
            "workers": worker_stats,
            "cache": {
                "type": "object",
                "properties": {
                    "hits": {"type": "integer"},
                    "misses": {"type": "integer"},
                    "hit_ratio": {"type": ["number", "null"]},
                    "workers_reporting": {"type": "integer"},
                },
            },
            "latency": {
                "type": "object",
                "required": ["request", "stages"],
                "properties": {
                    "request": {"$ref": "#/definitions/histogram"},
                    "stages": {
                        "type": "object",
                        "additionalProperties": {"$ref": "#/definitions/histogram"},
                    },
                },
            },
        },
    }
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": "vhdl-ifa JSON documents",
        "description": (
            "Every JSON document emitted by the vhdl-ifa CLI (--json), the "
            "batch driver and the serve mode carries a 'schema' field naming "
            "this contract version; each document shape is defined here by "
            "its 'command' value."
        ),
        "schema_version": SCHEMA_VERSION,
        "definitions": {
            "diagnostic": diagnostic,
            "policy": policy,
            "histogram": histogram,
        },
        "documents": {
            "analyze": analyze,
            "check": check,
            "lint": lint,
            "batch": batch,
            "stats": stats,
            "version": version_doc,
            "policy": policy_doc,
            "cache-stats": cache_stats,
            "error": error,
            "healthz": healthz,
            "metrics": metrics,
        },
    }
