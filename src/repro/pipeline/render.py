"""Render pipeline results as the CLI's text and ``--json`` documents.

Inputs are finished :class:`~repro.pipeline.artifacts.PipelineResult` /
:class:`~repro.pipeline.artifacts.AnalysisResult` objects; outputs are the
user-facing renderings.  Both the ``vhdl-ifa analyze`` command and the batch
driver go through :func:`render_analysis_text`, so a batch run's per-file
output is byte-identical to the sequential command by construction.  The
JSON builders return plain dicts (stable key order, only JSON-native types),
shared by ``--json`` on ``analyze``/``check``/``batch``;
:func:`analyze_document` / :func:`check_document` / :func:`json_text` are
the complete documents, shared by the CLI and ``vhdl-ifa serve`` — which is
why a server response is byte-identical to the corresponding CLI output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.pipeline.artifacts import AnalysisResult, PipelineResult


def select_graph(result: AnalysisResult, collapse: bool, self_loops: bool):
    """Apply the CLI's graph-shaping flags (shared by analyze/kemmerer/batch)."""
    graph = result.graph if self_loops else result.graph.without_self_loops()
    if collapse:
        graph = graph.collapse_environment_nodes()
    return graph


def render_adjacency(graph: Any) -> List[str]:
    """The CLI's adjacency-list rendering, one line per node."""
    return [
        f"  {node} -> {', '.join(successors) if successors else '(none)'}"
        for node, successors in graph.to_adjacency().items()
    ]


def render_analysis_text(
    result: AnalysisResult,
    collapse: bool = False,
    self_loops: bool = False,
    dot: bool = False,
    graph: Optional[Any] = None,
) -> str:
    """Exactly what ``vhdl-ifa analyze`` prints for one design.

    ``graph`` optionally supplies an already-shaped graph (the result of
    :func:`select_graph` with the same flags), so callers rendering both text
    and JSON shape it only once.
    """
    if graph is None:
        graph = select_graph(result, collapse, self_loops)
    lines = [result.summary()]
    if dot:
        lines.append(graph.to_dot())
    else:
        lines.extend(render_adjacency(graph))
    return "\n".join(lines)


def _round_timings(pipeline: PipelineResult) -> Dict[str, float]:
    return {name: round(seconds, 6) for name, seconds in pipeline.timings.items()}


def analysis_json(
    pipeline: PipelineResult,
    collapse: bool = False,
    self_loops: bool = False,
    file: Optional[str] = None,
    graph: Optional[Any] = None,
) -> Dict[str, Any]:
    """The machine-readable summary of one analysis run.

    Contains the design inventory, the (flag-shaped) adjacency, per-stage
    wall-clock timings and which stages were served from the artifact cache.
    ``graph`` optionally supplies an already-shaped graph, as in
    :func:`render_analysis_text`.
    """
    result = pipeline.result
    if graph is None:
        graph = select_graph(result, collapse, self_loops)
    cfg_stats = result.program_cfg.summary()
    document: Dict[str, Any] = {}
    if file is not None:
        document["file"] = file
    document.update(
        {
            "design": result.design.name,
            "options": {
                "entity": pipeline.options.entity,
                "improved": pipeline.options.improved,
                "loop_processes": pipeline.options.loop_processes,
                "use_under_approximation": pipeline.options.use_under_approximation,
            },
            "summary": {
                **cfg_stats,
                "local_entries": len(result.rm_local),
                "global_entries": len(result.rm_global),
                "nodes": graph.node_count(),
                "edges": graph.edge_count(),
            },
            "graph": {
                "collapse": collapse,
                "self_loops": self_loops,
                "adjacency": graph.to_adjacency(),
            },
            "timings": _round_timings(pipeline),
            "cached_stages": pipeline.cached_stages,
        }
    )
    return document


def report_json(pipeline: PipelineResult, file: Optional[str] = None) -> Dict[str, Any]:
    """The machine-readable form of a ``check`` run (analysis + verdict)."""
    document: Dict[str, Any] = {}
    if file is not None:
        document["file"] = file
    document.update(pipeline.report.to_json_dict())
    document["timings"] = _round_timings(pipeline)
    document["cached_stages"] = pipeline.cached_stages
    return document


def analyze_document(
    pipeline: PipelineResult,
    collapse: bool = False,
    self_loops: bool = False,
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete ``analyze --json`` document (CLI and server share it)."""
    return {
        "command": "analyze",
        **analysis_json(pipeline, collapse=collapse, self_loops=self_loops, file=file),
    }


def check_document(
    pipeline: PipelineResult,
    policy: Any,
    file: Optional[str] = None,
) -> Dict[str, Any]:
    """The complete ``check --json`` document (CLI and server share it)."""
    return {
        "command": "check",
        **report_json(pipeline, file=file),
        "policy": {"secrets": sorted(policy.secret_resources)},
    }


def json_text(document: Dict[str, Any]) -> str:
    """One canonical JSON serialisation, shared by the CLI and the server.

    Both ``vhdl-ifa analyze --json`` (via ``print``) and ``vhdl-ifa serve``
    emit exactly this text plus a trailing newline, which is what makes the
    two byte-comparable.
    """
    return json.dumps(document, indent=2, ensure_ascii=False)
