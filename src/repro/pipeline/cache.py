"""Content-addressed artifact caching for the staged pipeline: two tiers.

Artifacts are keyed by ``stage name + source hash + entity + the analysis
options that stage depends on`` (see ``stage_key`` in
:mod:`repro.pipeline.stages`): the same source text analysed with the same
options hits the same entries no matter which path produced them, and any
change to the source or the options changes the key.

Three stores implement that contract:

:class:`ArtifactCache`
    The in-memory, per-process tier — bounded, FIFO-evicted, with hit/miss
    counters.  A server keeps one per process; the batch driver's pool
    initialiser installs one per pool worker.
:class:`DiskArtifactCache`
    The persistent tier.  Entries live under
    ``<cache-dir>/<stage>/<key-sha256>.pkl`` next to an ``index.json``
    metadata file; writes go to a temporary file in the same directory and
    are published with an atomic ``os.replace``, so concurrent writers (two
    CLI invocations, many batch workers) never expose a torn entry.  Every
    entry embeds a format tag and :data:`FORMAT_VERSION`; entries with a
    stale tag, a truncated pickle or any other decoding problem are *evicted*
    on read, never raised.  Total entry size is bounded by ``max_bytes``
    with least-recently-used eviction (recency = file mtime, refreshed on
    every hit).
:class:`TieredArtifactCache`
    The composition the CLI, the batch workers and ``vhdl-ifa serve`` run
    on: an in-memory front tier over an optional on-disk back tier.  Gets
    fall through to disk and promote the loaded artifact into memory; puts
    write through to both tiers.

Universe pinning on disk
------------------------

Universe-bound artifacts (the bitset-encoded matrices and graphs from the
``local`` stage onward) are only meaningful together with the
:class:`~repro.dataflow.universe.FactUniverse` that interned their bit
positions, and the pipeline requires every universe-bound artifact of one
run to share one universe *object* (see :mod:`repro.pipeline.stages`).  The
disk tier therefore externalises universes instead of pickling one copy per
entry: a pickled artifact refers to its universe by the content hash of the
universe's fact list (a pickle ``persistent_id``), and the facts themselves
are written once to ``<cache-dir>/universes/<hash>.pkl`` — an immutable
snapshot, because any growth of the append-only universe changes the hash.
On load, snapshots resolve through a per-process registry: the first entry
to reference a snapshot materialises the universe, and every later entry
whose snapshot is a prefix-compatible extension (or restriction) of an
already-registered universe re-adopts *the same object*, extending it in
place when the snapshot is longer.  That is what lets a fresh process load
``local``, ``specialize``, ``closure`` and ``flow_graph`` from disk and
still hand the pipeline one consistent universe.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.dataflow.universe import FactUniverse

#: Bumped whenever the on-disk entry layout changes; entries (and whole cache
#: directories) recorded under another version are evicted, not decoded.
FORMAT_VERSION = 1

_ENTRY_TAG = "vhdl-ifa-artifact"
_UNIVERSE_TAG = "vhdl-ifa-universe"
_PERSISTENT_PREFIX = "universe:"
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def source_digest(source: str) -> str:
    """The content address of one design source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A bounded in-memory store of pipeline artifacts with hit/miss counters.

    ``max_entries`` bounds memory use under sustained traffic: when the cache
    is full, the least recently *stored* entries are evicted first (plain FIFO
    — artifact recomputation is cheap enough that LRU bookkeeping on every
    get is not worth it).
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._entries: Dict[str, Any] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """The cached artifact for ``key``, counting a hit or a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store one artifact, evicting the oldest entries when full."""
        if key not in self._entries and len(self._entries) >= self._max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for reports and tests."""
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


class _CacheMiss(Exception):
    """Internal: an on-disk entry exists but cannot be served."""


class _ArtifactPickler(pickle.Pickler):
    """Pickles artifacts with their universes externalised by snapshot id."""

    def __init__(self, buffer, uid_for, refs: Dict[str, FactUniverse]):
        super().__init__(buffer, protocol=_PICKLE_PROTOCOL)
        self._uid_for = uid_for
        self._refs = refs

    def persistent_id(self, obj: Any) -> Optional[str]:
        if isinstance(obj, FactUniverse):
            uid = self._uid_for(obj)
            self._refs[uid] = obj
            return _PERSISTENT_PREFIX + uid
        return None


class _ArtifactUnpickler(pickle.Unpickler):
    """Resolves externalised universe references against the registry."""

    def __init__(self, buffer, universes: Dict[str, FactUniverse]):
        super().__init__(buffer)
        self._universes = universes

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, str) and pid.startswith(_PERSISTENT_PREFIX):
            universe = self._universes.get(pid[len(_PERSISTENT_PREFIX):])
            if universe is not None:
                return universe
        raise pickle.UnpicklingError(f"unresolvable persistent id {pid!r}")


class DiskArtifactCache:
    """A persistent, content-addressed artifact store under one directory.

    See the module docstring for the layout and the universe-snapshot scheme.
    The store is safe to share between processes: entries are published with
    atomic renames and are self-describing (tag, version, full key), so the
    ``index.json`` metadata is only a convenience for ``stats`` and humans —
    a lost race on the index never loses or corrupts an entry.  All decoding
    failures (truncation, foreign pickles, stale :data:`FORMAT_VERSION`,
    missing universe snapshots) evict the offending entry and count a miss.
    """

    #: Default size budget for entry files (universe snapshots are tiny and
    #: kept outside the budget; ``clear`` removes them too).
    DEFAULT_MAX_BYTES = 256 * 1024 * 1024

    #: Rewrite ``index.json`` at most every this many puts — the index is
    #: non-authoritative metadata, so flushing lazily just means it may lag
    #: the entry files until the next flush (or the next open rebuilds it).
    INDEX_FLUSH_INTERVAL = 64

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        max_bytes: int = DEFAULT_MAX_BYTES,
        universe_registry_size: int = 256,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self._registry_size = universe_registry_size
        #: snapshot id -> universe object (several ids may alias one object).
        self._universes: Dict[str, FactUniverse] = {}
        #: id(universe) -> (snapshot id, universe length when hashed).
        self._universe_uids: Dict[int, Tuple[str, int]] = {}
        self.root.mkdir(parents=True, exist_ok=True)
        self._universe_dir = self.root / "universes"
        self._universe_dir.mkdir(exist_ok=True)
        self._index_path = self.root / "index.json"
        self._index = self._load_index()
        self._dirty_puts = 0
        #: Running estimate of total entry bytes; writes by other processes
        #: are only seen at the next budget scan, so the budget is a target,
        #: not a hard ceiling, for concurrently-written stores.
        self._approx_bytes = sum(size for _, size in self._entry_files())

    # ------------------------------------------------------------ store API

    def get(self, key: str) -> Optional[Any]:
        """The artifact stored for ``key``, or ``None`` (counting hit/miss).

        A hit refreshes the entry file's mtime, which is the recency the LRU
        eviction in :meth:`put` orders by.
        """
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            value = self._decode_entry(key, blob)
        except Exception:
            # Truncated/corrupted/stale entries are evicted, never raised.
            self._remove_entry(path)
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Persist one artifact atomically, then enforce the size budget.

        Unpicklable values are skipped silently: the disk tier is an
        accelerator, not a system of record, so a value it cannot hold simply
        stays compute-on-demand.
        """
        try:
            blob = self._encode_entry(key, value)
        except Exception:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, blob)
        relpath = str(path.relative_to(self.root))
        self._index["entries"][relpath] = {
            "key": key,
            "stage": path.parent.name,
            "bytes": len(blob),
        }
        # Overwrites of an existing key are counted as growth here; the next
        # budget scan resynchronises the estimate, so errors only make the
        # (O(entries)) scan happen a little early, never late.
        self._approx_bytes += len(blob)
        self._dirty_puts += 1
        if self._approx_bytes > self.max_bytes:
            self._enforce_budget(keep=path)
            self._write_index()
            self._dirty_puts = 0
        elif self._dirty_puts >= self.INDEX_FLUSH_INTERVAL:
            self._write_index()
            self._dirty_puts = 0

    def clear(self) -> None:
        """Remove every entry and universe snapshot (counters are kept)."""
        self._clear_files()
        self._universes.clear()
        self._universe_uids.clear()
        self._index = {"version": FORMAT_VERSION, "entries": {}}
        self._approx_bytes = 0
        self._dirty_puts = 0
        self._write_index()

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()

    def stats(self) -> Dict[str, Any]:
        """Directory-scan statistics plus this process's hit/miss counters."""
        stages: Dict[str, int] = {}
        total = 0
        for path, size in self._entry_files():
            stages[path.parent.name] = stages.get(path.parent.name, 0) + 1
            total += size
        universes = sum(1 for _ in self._universe_dir.glob("*.pkl"))
        return {
            "path": str(self.root),
            "version": FORMAT_VERSION,
            "entries": sum(stages.values()),
            "bytes": total,
            "max_bytes": self.max_bytes,
            "universes": universes,
            "hits": self.hits,
            "misses": self.misses,
            "stages": dict(sorted(stages.items())),
        }

    # -------------------------------------------------------------- encoding

    def _encode_entry(self, key: str, value: Any) -> bytes:
        buffer = io.BytesIO()
        refs: Dict[str, FactUniverse] = {}
        _ArtifactPickler(buffer, self._uid_for, refs).dump(value)
        universe_lengths = {uid: len(universe) for uid, universe in refs.items()}
        for uid, universe in refs.items():
            self._save_universe(uid, universe)
        return pickle.dumps(
            (_ENTRY_TAG, FORMAT_VERSION, key, universe_lengths, buffer.getvalue()),
            protocol=_PICKLE_PROTOCOL,
        )

    def _decode_entry(self, key: str, blob: bytes) -> Any:
        envelope = pickle.loads(blob)
        tag, version, stored_key, universe_lengths, payload = envelope
        if tag != _ENTRY_TAG or version != FORMAT_VERSION or stored_key != key:
            raise _CacheMiss(f"stale or foreign entry for {key!r}")
        for uid, needed in universe_lengths.items():
            self._require_universe(uid, needed)
        return _ArtifactUnpickler(io.BytesIO(payload), self._universes).load()

    # -------------------------------------------------- universe snapshots

    def _uid_for(self, universe: FactUniverse) -> str:
        """The content hash of ``universe``'s fact list (its snapshot id)."""
        cached = self._universe_uids.get(id(universe))
        if cached is not None:
            uid, length = cached
            if self._universes.get(uid) is universe and length == len(universe):
                return uid
        facts = list(universe)
        uid = hashlib.sha256(
            pickle.dumps(facts, protocol=_PICKLE_PROTOCOL)
        ).hexdigest()[:32]
        self._register_universe(uid, universe)
        return uid

    def _register_universe(self, uid: str, universe: FactUniverse) -> None:
        self._universes[uid] = universe
        self._universe_uids[id(universe)] = (uid, len(universe))
        while len(self._universes) > self._registry_size:
            oldest_uid = next(iter(self._universes))
            oldest = self._universes.pop(oldest_uid)
            self._universe_uids.pop(id(oldest), None)

    def _save_universe(self, uid: str, universe: FactUniverse) -> None:
        path = self._universe_dir / f"{uid}.pkl"
        if path.exists():
            return  # snapshots are content-addressed, hence immutable
        blob = pickle.dumps(
            (_UNIVERSE_TAG, FORMAT_VERSION, uid, list(universe)),
            protocol=_PICKLE_PROTOCOL,
        )
        self._atomic_write(path, blob)

    def _require_universe(self, uid: str, needed: int) -> None:
        """Make the snapshot ``uid`` resolvable with at least ``needed`` facts."""
        universe = self._universes.get(uid)
        if universe is None:
            universe = self._adopt_universe(uid, self._read_universe_facts(uid))
        if len(universe) < needed:
            raise _CacheMiss(
                f"universe snapshot {uid} holds {len(universe)} < {needed} facts"
            )

    def _read_universe_facts(self, uid: str) -> List[Any]:
        path = self._universe_dir / f"{uid}.pkl"
        try:
            envelope = pickle.loads(path.read_bytes())
            tag, version, stored_uid, facts = envelope
        except Exception as error:
            raise _CacheMiss(f"unreadable universe snapshot {uid}") from error
        if tag != _UNIVERSE_TAG or version != FORMAT_VERSION or stored_uid != uid:
            raise _CacheMiss(f"stale universe snapshot {uid}")
        return list(facts)

    def _adopt_universe(self, uid: str, facts: List[Any]) -> FactUniverse:
        """Register ``uid``, re-using a prefix-compatible live universe.

        Snapshots taken at different growth points of one append-only
        universe are prefixes of each other, so aliasing them all to one
        object keeps the pipeline's identity discipline across entries: an
        artifact referencing the shorter snapshot decodes identically against
        the longer universe.
        """
        if facts:
            seen = {id(u): u for u in self._universes.values()}
            for existing in seen.values():
                known = list(existing)
                overlap = min(len(known), len(facts))
                if overlap == 0 or known[0] != facts[0]:
                    continue
                if known[:overlap] == facts[:overlap]:
                    if len(facts) > len(known):
                        existing.intern_all(facts[len(known):])
                    self._universes[uid] = existing
                    return existing
        universe: FactUniverse = FactUniverse(facts)
        self._register_universe(uid, universe)
        return universe

    # ----------------------------------------------------------- filesystem

    def _entry_path(self, key: str) -> Path:
        stage = key.split(":", 1)[0]
        if not stage.isidentifier():
            stage = "misc"
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / stage / f"{digest}.pkl"

    def _entry_files(self) -> Iterator[Tuple[Path, int]]:
        for child in sorted(self.root.iterdir()):
            if not child.is_dir() or child.name == "universes":
                continue
            for path in sorted(child.glob("*.pkl")):
                try:
                    yield path, path.stat().st_size
                except OSError:
                    continue  # evicted by a concurrent process mid-scan

    def _atomic_write(self, path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remove_entry(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self._index["entries"].pop(str(path.relative_to(self.root)), None)
        self._write_index()

    def _enforce_budget(self, keep: Optional[Path] = None) -> None:
        files = []
        total = 0
        for path, size in self._entry_files():
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            files.append((mtime, size, path))
            total += size
        if total <= self.max_bytes:
            self._approx_bytes = total
            return
        files.sort(key=lambda item: item[0])
        for _, size, path in files:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self._index["entries"].pop(str(path.relative_to(self.root)), None)
            total -= size
        self._approx_bytes = total

    def _clear_files(self) -> None:
        for path, _ in list(self._entry_files()):
            try:
                path.unlink()
            except OSError:
                pass
        for path in self._universe_dir.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass

    # ---------------------------------------------------------------- index

    def _load_index(self) -> Dict[str, Any]:
        try:
            index = json.loads(self._index_path.read_text(encoding="utf-8"))
            if not isinstance(index, dict):
                raise ValueError("index is not an object")
            entries = index.get("entries", {})
            # A torn or concurrently-rewritten index can be valid JSON of
            # the wrong shape; treat it exactly like unparsable bytes.
            if not isinstance(entries, dict) or any(
                not isinstance(entry, dict) for entry in entries.values()
            ):
                raise ValueError("index entries are malformed")
        except (OSError, ValueError, TypeError):
            # Missing or corrupt index: rebuild it from the entry files — the
            # entries themselves are self-describing and stay servable.
            index = self._rebuild_index()
            self._index = index
            self._write_index()
            return index
        if index.get("version") != FORMAT_VERSION:
            # A different format version wrote this cache: evict wholesale.
            self._clear_files()
            index = {"version": FORMAT_VERSION, "entries": {}}
            self._index = index
            self._write_index()
            return index
        index.setdefault("entries", {})
        return index

    def _rebuild_index(self) -> Dict[str, Any]:
        entries: Dict[str, Any] = {}
        for path, size in self._entry_files():
            entries[str(path.relative_to(self.root))] = {
                "stage": path.parent.name,
                "bytes": size,
            }
        return {"version": FORMAT_VERSION, "entries": entries}

    def _write_index(self) -> None:
        blob = json.dumps(self._index, indent=2, sort_keys=True).encode("utf-8")
        try:
            self._atomic_write(self._index_path, blob)
        except OSError:
            pass  # metadata only; entries remain self-describing


class TieredArtifactCache:
    """An in-memory front tier over an optional persistent back tier.

    Gets hit the memory tier first, fall through to disk and promote the
    loaded artifact into memory (so one process pays the unpickling cost
    once per entry); puts write through to both tiers.  ``hits``/``misses``
    count at the composed level: a disk hit is a hit.
    """

    def __init__(
        self,
        memory: Optional[ArtifactCache] = None,
        disk: Optional[DiskArtifactCache] = None,
    ):
        self.memory = memory if memory is not None else ArtifactCache()
        self.disk = disk
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Any]:
        """The artifact from the nearest tier holding it, promoting disk hits."""
        value = self.memory.get(key)
        if value is None and self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                self.memory.put(key, value)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Write through to both tiers."""
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def clear(self) -> None:
        """Clear both tiers (counters are kept, as in the single tiers)."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    def __len__(self) -> int:
        return len(self.memory)

    def __contains__(self, key: str) -> bool:
        if key in self.memory:
            return True
        return self.disk is not None and key in self.disk

    def stats(self) -> Dict[str, Any]:
        """Composed counters plus each tier's own statistics."""
        stats: Dict[str, Any] = {
            "hits": self.hits,
            "misses": self.misses,
            "memory": self.memory.stats(),
        }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats


def open_cache(
    cache_dir: Optional[str] = None,
    *,
    memory: bool = True,
    max_entries: int = 1024,
    max_bytes: int = DiskArtifactCache.DEFAULT_MAX_BYTES,
) -> Optional[Any]:
    """The cache the CLI, batch workers and the server share.

    With ``cache_dir`` this is a :class:`TieredArtifactCache` over a
    :class:`DiskArtifactCache` rooted there; without it, a plain in-memory
    :class:`ArtifactCache` when ``memory`` is true, else ``None`` (caching
    disabled — the ``--no-cache`` path).
    """
    if cache_dir is not None:
        return TieredArtifactCache(
            ArtifactCache(max_entries), DiskArtifactCache(cache_dir, max_bytes)
        )
    return ArtifactCache(max_entries) if memory else None
