"""Content-addressed artifact cache for the staged pipeline.

Artifacts are keyed by ``stage name + source hash + entity + the analysis
options that stage depends on`` (see ``stage_key`` in
:mod:`repro.pipeline.stages`): the same source text analysed with the same
options hits the same entries no matter which path produced them, and any
change to the source or the options changes the key.  The cache is in-memory
and per-process — a server keeps one per worker; the batch driver's pool
initialiser installs one per pool process — and it counts hits and misses so
tests and ``--json`` output can assert cache behaviour.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional


def source_digest(source: str) -> str:
    """The content address of one design source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ArtifactCache:
    """A bounded in-memory store of pipeline artifacts with hit/miss counters.

    ``max_entries`` bounds memory use under sustained traffic: when the cache
    is full, the least recently *stored* entries are evicted first (plain FIFO
    — artifact recomputation is cheap enough that LRU bookkeeping on every
    get is not worth it).
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._entries: Dict[str, Any] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """The cached artifact for ``key``, counting a hit or a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store one artifact, evicting the oldest entries when full."""
        if key not in self._entries and len(self._entries) >= self._max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = value

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for reports and tests."""
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}
