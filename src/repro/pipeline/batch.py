"""Batch driver: analyse many files (or all entities of a file) at once.

Inputs are file paths; outputs are :class:`BatchItem` records holding the
exact text/JSON the sequential ``vhdl-ifa analyze`` command would print for
that file.  The driver expands the requested paths into :class:`BatchJob`
items (one per file, or one per entity with ``all_entities=True``), runs
each job through the staged pipeline and renders it with
:func:`repro.pipeline.render.render_analysis_text` — both paths share the
renderer, so the per-file output is byte-identical by construction.

``parallel=True`` distributes jobs over a ``ProcessPoolExecutor``; results
are collected in submission order, so the output ordering is deterministic
regardless of which worker finishes first.  Every pool worker keeps one
process-local :class:`~repro.pipeline.cache.ArtifactCache` alive across the
jobs it serves, and with ``cache_dir`` every worker layers that in-memory
tier over the *shared* :class:`~repro.pipeline.cache.DiskArtifactCache` —
a cold parallel run over previously-seen files then skips parse/elaborate
(and every other stage) entirely.  In sequential mode a caller-supplied
cache persists across whole batch runs, which is what makes warm re-runs
skip the expensive stages; cache keys are the per-stage keys of
:func:`repro.pipeline.stages.stage_key` (stage + source sha256 + the options
the stage depends on).
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.pipeline.artifacts import AnalysisOptions
from repro.pipeline.cache import open_cache, source_digest
from repro.pipeline.faults import install_process_injector, process_injector
from repro.pipeline.render import (
    analysis_json,
    lint_section,
    policy_summary,
    render_analysis_text,
    render_lint_text,
    report_json,
    select_graph,
    stamped,
)
from repro.hier.flatten import flatten_if_hierarchical
from repro.pipeline.stages import PARSE, Pipeline, stage_key
from repro.vhdl.parser import parse_program

#: Everything one job can fail with: analysis errors, unreadable files, and
#: files that are not valid UTF-8 (UnicodeDecodeError is a ValueError, so the
#: OSError net alone would let it escape as a crash).
_JOB_ERRORS = (ReproError, OSError, UnicodeDecodeError)


def _error_kind(error: BaseException) -> str:
    """Classify a job failure for exit-code purposes.

    ``"analysis"`` is everything the toolchain itself diagnoses (parse,
    elaboration, analysis and policy errors — any :class:`ReproError`);
    ``"input"`` is a file the job could not even read (missing, unreadable,
    not UTF-8).  The CLI maps these to exit codes 1 and 2 respectively.
    A third kind, ``"worker"``, is assigned by :func:`run_batch` itself when
    a job repeatedly took its worker process down (see the broken-pool
    recovery there); it exits like an analysis failure.
    """
    return "analysis" if isinstance(error, ReproError) else "input"


@dataclass(frozen=True)
class BatchJob:
    """One unit of batch work: a source file, optionally a specific entity."""

    path: str
    entity: Optional[str] = None

    @property
    def label(self) -> str:
        """Display name used in headers and JSON output."""
        return self.path if self.entity is None else f"{self.path}:{self.entity}"


@dataclass
class BatchItem:
    """The outcome of one job: rendered text, JSON payload, or an error.

    ``error_kind`` classifies a failure (``"analysis"`` vs ``"input"``, see
    :func:`_error_kind`); ``clean`` is the policy verdict when the batch ran
    with a policy (``None`` otherwise).
    """

    job: BatchJob
    ok: bool
    text: str = ""
    error: Optional[str] = None
    error_kind: Optional[str] = None
    data: Optional[Dict[str, Any]] = None
    seconds: float = 0.0
    clean: Optional[bool] = None


@dataclass
class BatchReport:
    """All job outcomes (in submission order) plus run-level statistics."""

    items: List[BatchItem] = field(default_factory=list)
    elapsed: float = 0.0
    parallel: bool = False
    workers: int = 1
    policy: Optional[Any] = None
    fail_on: str = "error"
    """The severity threshold behind :attr:`exit_code` (``--fail-on``):
    ``"error"`` (the default), ``"warning"`` (warnings fail too), or
    ``"never"`` (findings and violations never affect the exit code)."""

    @property
    def ok(self) -> bool:
        """True when every job succeeded."""
        return all(item.ok for item in self.items)

    @property
    def failures(self) -> List[BatchItem]:
        """The failed jobs, in submission order."""
        return [item for item in self.items if not item.ok]

    @property
    def violations_found(self) -> bool:
        """True when a policy ran and at least one job was not clean."""
        return any(item.clean is False for item in self.items)

    @property
    def lint_findings_found(self) -> bool:
        """True when a lint section of any job trips :attr:`fail_on`."""
        if self.fail_on == "never":
            return False
        for item in self.items:
            summary = ((item.data or {}).get("lint") or {}).get("summary")
            if summary is None:
                continue
            if summary["errors"]:
                return True
            if self.fail_on == "warning" and summary["warnings"]:
                return True
        return False

    @property
    def exit_code(self) -> int:
        """The CLI exit code for this run, most severe condition first:
        2 when any job failed on unreadable input, 1 when any job failed in
        analysis, 3 when every job ran but a policy violation or a lint
        finding at/above :attr:`fail_on` was found, 0 otherwise — mirroring
        the single-file subcommands (``--fail-on never`` turns verdicts
        informational).
        """
        failures = self.failures
        if any(item.error_kind == "input" for item in failures):
            return 2
        if failures:
            return 1
        if self.fail_on != "never" and self.violations_found:
            return 3
        if self.lint_findings_found:
            return 3
        return 0

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``--json`` document for a whole batch run."""
        document: Dict[str, Any] = {
            "command": "batch",
            "parallel": self.parallel,
            "workers": self.workers,
        }
        if self.policy is not None:
            document["policy"] = policy_summary(self.policy)
        document.update(
            {
                "jobs": [
                    {
                        "file": item.job.path,
                        "entity": item.job.entity,
                        "ok": item.ok,
                        "seconds": round(item.seconds, 6),
                        **(
                            {"error": item.error, "error_kind": item.error_kind}
                            if item.error is not None
                            else {}
                        ),
                        **(item.data or {}),
                    }
                    for item in self.items
                ],
                "elapsed": round(self.elapsed, 6),
                "failed": len(self.failures),
            }
        )
        return stamped(document)


def entities_in(source: str) -> List[str]:
    """The entities of a source file, in architecture order."""
    return [arch.entity_name for arch in parse_program(source).architectures]


def expand_jobs(
    paths: Sequence[str],
    all_entities: bool = False,
    cache: Optional[Any] = None,
) -> List[BatchJob]:
    """Turn file paths into jobs, optionally one per entity in each file.

    With ``all_entities`` a file that cannot be read or parsed still yields a
    single job for it, so the error surfaces as that job's outcome instead of
    aborting the whole batch.  ``cache`` optionally receives the parse
    artefacts produced during expansion (under their pipeline stage keys), so
    an in-process batch run over the same cache does not parse each file a
    second time.
    """
    jobs: List[BatchJob] = []
    for path in paths:
        if not all_entities:
            jobs.append(BatchJob(path=path))
            continue
        try:
            source = Path(path).read_text(encoding="utf-8")
            program = parse_program(source)
        except _JOB_ERRORS:
            jobs.append(BatchJob(path=path))
            continue
        if cache is not None:
            cache.put(
                stage_key(PARSE, source_digest(source), AnalysisOptions()), program
            )
        names = [arch.entity_name for arch in program.architectures]
        if names:
            jobs.extend(BatchJob(path=path, entity=name) for name in names)
        else:
            jobs.append(BatchJob(path=path))
    return jobs


def run_job(
    job: BatchJob,
    options: AnalysisOptions,
    collapse: bool = False,
    self_loops: bool = False,
    dot: bool = False,
    pipeline: Optional[Pipeline] = None,
    policy: Optional[Any] = None,
    lint: Optional[Any] = None,
) -> BatchItem:
    """Analyse one job and render its output; errors become the outcome.

    Without a policy the outcome is the ``analyze`` rendering (text and the
    ``analysis_json`` payload).  With a policy the job becomes a check: the
    pipeline's report stage runs (in the policy's preferred transitive mode),
    the text is the covert-channel report, the payload is the ``check``-style
    report document, and ``clean`` carries the verdict.  ``lint`` (a
    :class:`~repro.analysis.lint.LintConfig`) additionally runs the cached
    lint stage and rides a ``"lint"`` section — the exact
    :func:`~repro.pipeline.render.lint_section` body the single-file ``lint``
    command emits — on the payload, plus the lint text after the rendering.
    """
    if pipeline is None:
        pipeline = Pipeline()
    started = time.perf_counter()
    try:
        source = Path(job.path).read_text(encoding="utf-8")
        if job.entity is not None:
            options = dataclasses.replace(options, entity=job.entity)
        # A hierarchical file is analysed as its flat equivalent (the entity,
        # if any, selects the hierarchy root); flat files pass through without
        # being re-parsed.  See docs/hierarchy.md.
        source = flatten_if_hierarchical(source, options.entity)
        if policy is not None:
            report_options = {
                "transitive": bool(getattr(policy, "transitive", False))
            }
            if lint is not None:
                run = pipeline.run_lint(
                    source, options, policy=policy, report_options=report_options
                )
            else:
                run = pipeline.run(
                    source, options, policy=policy, report_options=report_options
                )
            text = run.report.to_text()
            data = report_json(run)
        else:
            if lint is not None:
                run = pipeline.run_lint(source, options)
            else:
                run = pipeline.run(source, options)
            graph = select_graph(run.result, collapse, self_loops)
            text = render_analysis_text(
                run.result,
                collapse=collapse,
                self_loops=self_loops,
                dot=dot,
                graph=graph,
            )
            data = analysis_json(
                run, collapse=collapse, self_loops=self_loops, graph=graph
            )
        if lint is not None:
            findings = lint.apply(run.artifacts.lint)
            data["lint"] = lint_section(findings)
            text = "\n\n".join(
                (text, render_lint_text(run.result.design.name, findings))
            )
        return BatchItem(
            job=job,
            ok=True,
            text=text,
            data=data,
            seconds=time.perf_counter() - started,
            clean=run.report.is_clean if policy is not None else None,
        )
    except _JOB_ERRORS as error:
        return BatchItem(
            job=job,
            ok=False,
            error=str(error),
            error_kind=_error_kind(error),
            seconds=time.perf_counter() - started,
        )


# Each pool worker keeps one pipeline (and its artifact cache) alive for the
# jobs it serves; repeated files within one batch hit the worker's cache, and
# with a cache directory all workers additionally share the disk tier.
_WORKER_PIPELINE: Optional[Pipeline] = None


def _init_worker(cache_dir: Optional[str] = None, no_cache: bool = False) -> None:
    global _WORKER_PIPELINE
    # Arm this worker's fault injector from the environment switch (a no-op
    # plan outside the fault-injection tests).
    install_process_injector()
    _WORKER_PIPELINE = Pipeline(None if no_cache else open_cache(cache_dir))


def _run_job_in_worker(payload) -> BatchItem:
    job, options, collapse, self_loops, dot, policy, lint, preparsed = payload
    # The job path is the fault trigger text, so a test can crash or delay
    # exactly one job of a batch.
    process_injector().before_analysis(job.path)
    if preparsed is not None and _WORKER_PIPELINE.cache is not None:
        # The driver pre-parsed this job's file (it backs several jobs of the
        # batch) and shipped the parse artifact; seed it under its pipeline
        # stage key so this worker's run skips the parse stage.
        digest, program = preparsed
        _WORKER_PIPELINE.cache.put(
            stage_key(PARSE, digest, AnalysisOptions()), program
        )
    return run_job(
        job,
        options,
        collapse=collapse,
        self_loops=self_loops,
        dot=dot,
        pipeline=_WORKER_PIPELINE,
        policy=policy,
        lint=lint,
    )


def default_workers() -> int:
    """The default pool size: one worker per available CPU."""
    return os.cpu_count() or 1


def _shared_parses(
    jobs: Sequence[BatchJob], cache: Optional[Any] = None
) -> Dict[str, Any]:
    """Pre-parse every file that backs more than one job of a parallel batch.

    Returns ``path -> (source digest, parsed program)`` for those files, to
    be shipped inside the job payloads and seeded into each worker's cache —
    without this, an ``all_entities`` batch over an 8-entity file parses the
    identical source once per entity job *per worker*.  ``cache`` is the
    driver-side cache that :func:`expand_jobs` seeded, so expansion's parse
    is reused here rather than redone.  Unreadable or unparsable files are
    skipped; their jobs surface the error individually.
    """
    counts: Dict[str, int] = {}
    for job in jobs:
        counts[job.path] = counts.get(job.path, 0) + 1
    shared: Dict[str, Any] = {}
    for path, count in counts.items():
        if count < 2:
            continue
        try:
            source = Path(path).read_text(encoding="utf-8")
            digest = source_digest(source)
            program = None
            if cache is not None:
                program = cache.get(stage_key(PARSE, digest, AnalysisOptions()))
            if program is None:
                program = parse_program(source)
            shared[path] = (digest, program)
        except _JOB_ERRORS:
            continue
    return shared


def _pool_results(
    payloads: Sequence[Any],
    workers: int,
    cache_dir: Optional[str],
    no_cache: bool,
) -> List[Optional[BatchItem]]:
    """Run payloads on one process pool; a broken-pool casualty is ``None``.

    ``None`` marks a job whose result was lost to pool breakage — either the
    job itself killed its worker, or it was collateral damage of one that
    did.  The caller decides the retry policy; this helper never raises on
    worker death.
    """
    results: List[Optional[BatchItem]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(cache_dir, no_cache),
    ) as executor:
        futures = [
            executor.submit(_run_job_in_worker, payload) for payload in payloads
        ]
        for future in futures:
            try:
                results.append(future.result())
            except BrokenExecutor:
                results.append(None)
    return results


def run_batch(
    jobs: Iterable[BatchJob],
    options: Optional[AnalysisOptions] = None,
    *,
    collapse: bool = False,
    self_loops: bool = False,
    dot: bool = False,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache: Optional[Any] = None,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    policy: Optional[Any] = None,
    lint: Optional[Any] = None,
    fail_on: str = "error",
) -> BatchReport:
    """Analyse every job; results come back in submission order.

    ``parallel=True`` fans out over a process pool (``max_workers`` defaults
    to the CPU count; in-memory caches are then per worker process, though
    files backing several jobs are parsed once on the driver — reusing
    ``cache`` when :func:`expand_jobs` seeded it — and the parse artifacts
    shipped to the workers; with ``cache_dir`` every worker additionally
    shares the persistent :class:`~repro.pipeline.cache.DiskArtifactCache`
    rooted there, and ``no_cache=True`` gives the workers no cache at all).
    ``parallel=False`` runs in-process, threading ``cache`` through every
    job — run two batches over the same cache and the second one is served
    from warm artifacts.  When no ``cache`` is supplied (and ``no_cache`` is
    off) the run opens its own via :func:`~repro.pipeline.cache.open_cache`,
    so entity jobs over the same file share one parse artifact even on a
    cold one-shot batch.  ``policy`` turns every job into a policy check
    (see :func:`run_job`); the policy must be picklable for parallel runs.
    ``lint`` (a picklable :class:`~repro.analysis.lint.LintConfig`) adds the
    per-job lint section; ``fail_on`` sets the severity threshold behind
    :attr:`BatchReport.exit_code`.
    """
    if options is None:
        options = AnalysisOptions()
    job_list = list(jobs)
    report = BatchReport(parallel=parallel, policy=policy, fail_on=fail_on)
    started = time.perf_counter()

    if parallel:
        workers = max_workers if max_workers is not None else default_workers()
        workers = max(1, min(workers, len(job_list) or 1))
        report.workers = workers
        # Parse each multi-job file once on the driver (reusing the parse
        # that expand_jobs left in ``cache`` when the caller threaded it
        # through) and ship the program with every job touching that file;
        # each worker seeds its own cache from the payload instead of
        # re-parsing per job.
        preparsed = {} if no_cache else _shared_parses(job_list, cache)
        payloads = [
            (
                job,
                options,
                collapse,
                self_loops,
                dot,
                policy,
                lint,
                preparsed.get(job.path),
            )
            for job in job_list
        ]
        results = _pool_results(payloads, workers, cache_dir, no_cache)
        # A job that takes its worker process down (crash, OOM kill) breaks
        # the whole executor: every unfinished future raises.  Retry each
        # casualty once on its own fresh single-worker pool — one poisonous
        # job then costs exactly its own slot, not the batch — and report a
        # job that breaks its pool twice as a "worker" error item.
        casualties = [index for index, item in enumerate(results) if item is None]
        for index in casualties:
            retried = _pool_results([payloads[index]], 1, cache_dir, no_cache)[0]
            if retried is None:
                job = payloads[index][0]
                retried = BatchItem(
                    job=job,
                    ok=False,
                    error=(
                        "analysis worker process died running this job "
                        "(broken process pool); the retry on a fresh pool "
                        "died too"
                    ),
                    error_kind="worker",
                )
            results[index] = retried
        report.items = results
    else:
        report.workers = 1
        if cache is None and not no_cache:
            # Even a one-shot sequential batch wants an in-run cache: with
            # ``all_entities`` every entity job re-reads the same file, and
            # the source-keyed parse tier means one parse serves all of
            # them.  Without this a cold 8-entity batch tokenises and parses
            # the identical source eight times over.
            cache = open_cache(cache_dir)
        pipeline = Pipeline(cache)
        report.items = [
            run_job(
                job,
                options,
                collapse=collapse,
                self_loops=self_loops,
                dot=dot,
                pipeline=pipeline,
                policy=policy,
                lint=lint,
            )
            for job in job_list
        ]

    report.elapsed = time.perf_counter() - started
    return report
