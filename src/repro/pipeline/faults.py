"""Deterministic fault injection for the serve/batch worker machinery.

The fault-tolerance behaviour of ``vhdl-ifa serve`` (request timeouts that
recycle a hung worker, crash recovery, corrupt-cache eviction) and of the
batch driver (surviving a broken process pool) is only trustworthy if it is
*testable on demand*.  This module is the single switch all of those tests
flip: a :class:`FaultPlan` describes which faults to inject and when, and a
:class:`FaultInjector` applies them at the few choke points the workers
thread it through.

Faults are off by default and armed in one of two ways:

* **constructor switch** — pass ``faults=FaultPlan(...)`` to
  :class:`repro.pipeline.serve.AnalysisServer`; the plan is shipped to every
  pool worker it spawns;
* **environment switch** — set :data:`FAULTS_ENV` to the plan's JSON form
  (``FaultPlan.to_env()``); batch pool workers and standalone processes pick
  it up in their initialisers via :func:`FaultPlan.from_env`.

The injectable faults:

``delay_seconds``
    Sleep this long before running an analysis — long enough relative to the
    server's ``--timeout`` and this *is* a hung worker.
``crash``
    Hard-exit the worker process (``os._exit``) before the analysis runs,
    simulating an OOM kill / segfault mid-request.
``corrupt_cache_reads``
    Truncate the on-disk cache entry for a key *just before* it is read, so
    every disk hit exercises :class:`~repro.pipeline.cache.DiskArtifactCache`'s
    evict-on-corruption path (the analysis must recompute and still answer
    correctly).

``match`` scopes a fault to requests whose trigger text (the VHDL source for
serve workers, the job path for batch workers) contains the substring, so a
test can hang exactly one request while its neighbours stay healthy.
``once`` disarms the plan after its first trigger in a given process.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: The environment switch: a JSON object with any of the FaultPlan fields.
FAULTS_ENV = "VHDL_IFA_FAULTS"

#: Exit status of a crash-injected worker (distinct from real Python exits).
CRASH_EXIT_CODE = 70


@dataclass
class FaultPlan:
    """Which faults to inject, and when they trigger.

    All fields default to the no-fault behaviour, so an empty plan (and an
    unset :data:`FAULTS_ENV`) is exactly the production configuration.
    """

    delay_seconds: float = 0.0
    crash: bool = False
    corrupt_cache_reads: bool = False
    match: Optional[str] = None
    once: bool = False

    def is_active(self) -> bool:
        """True when the plan injects anything at all."""
        return bool(self.delay_seconds or self.crash or self.corrupt_cache_reads)

    def to_env(self) -> str:
        """The JSON form to place in :data:`FAULTS_ENV` for child processes."""
        return json.dumps(
            {
                "delay_seconds": self.delay_seconds,
                "crash": self.crash,
                "corrupt_cache_reads": self.corrupt_cache_reads,
                "match": self.match,
                "once": self.once,
            }
        )

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan encoded in :data:`FAULTS_ENV`, or ``None``.

        A malformed value is treated as no plan: fault injection is a test
        facility and must never take a production process down by itself.
        """
        raw = (environ if environ is not None else os.environ).get(FAULTS_ENV)
        if not raw:
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                return None
            known = {name: payload[name] for name in (
                "delay_seconds", "crash", "corrupt_cache_reads", "match", "once"
            ) if name in payload}
            return cls(**known)
        except (ValueError, TypeError):
            return None


class FaultInjector:
    """Applies one :class:`FaultPlan` at the worker choke points.

    One injector lives per worker process; ``fired`` counts triggers (visible
    in worker metadata), and a ``once`` plan disarms itself after the first.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.fired = 0
        self._armed = self.plan.is_active()

    def _triggers(self, text: str) -> bool:
        if not self._armed:
            return False
        if self.plan.match is not None and self.plan.match not in text:
            return False
        self.fired += 1
        if self.plan.once:
            self._armed = False
        return True

    def before_analysis(self, trigger_text: str = "") -> None:
        """Inject delay and/or crash just before an analysis runs."""
        if not (self.plan.delay_seconds or self.plan.crash):
            return
        if not self._triggers(trigger_text):
            return
        if self.plan.delay_seconds:
            time.sleep(self.plan.delay_seconds)
        if self.plan.crash:
            # A hard exit, not an exception: the point is to simulate the
            # worker being killed out from under the supervisor.
            os._exit(CRASH_EXIT_CODE)

    def wrap_cache(self, cache: Any) -> Any:
        """Wrap ``cache`` so disk reads hit corrupted entry files.

        Understands the three store shapes of :mod:`repro.pipeline.cache`:
        a tiered cache has its disk tier wrapped in place, a bare disk cache
        is wrapped directly, and anything else (in-memory, ``None``) is
        returned untouched — there is no file to corrupt.
        """
        if not self.plan.corrupt_cache_reads or cache is None:
            return cache
        disk = getattr(cache, "disk", None)
        if disk is not None:
            cache.disk = CorruptingDiskCache(disk, self)
            return cache
        if hasattr(cache, "_entry_path"):
            return CorruptingDiskCache(cache, self)
        return cache

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "FaultInjector":
        return cls(FaultPlan.from_env(environ))


class CorruptingDiskCache:
    """A :class:`~repro.pipeline.cache.DiskArtifactCache` proxy that tears
    the entry file apart immediately before every read.

    The wrapped store's own robustness is what is under test: a corrupted
    entry must be evicted and counted as a miss, never raised, and the
    caller recomputes.  ``corruptions`` counts how many files were damaged.
    """

    _OWN_ATTRS = ("_disk", "_injector", "corruptions")

    def __init__(self, disk: Any, injector: FaultInjector):
        object.__setattr__(self, "_disk", disk)
        object.__setattr__(self, "_injector", injector)
        object.__setattr__(self, "corruptions", 0)

    def get(self, key: str) -> Optional[Any]:
        path = self._disk._entry_path(key)
        if path.exists() and self._injector._triggers(key):
            try:
                # Truncate mid-pickle: the classic torn write / bad sector.
                blob = path.read_bytes()
                path.write_bytes(blob[: max(1, len(blob) // 3)])
                self.corruptions += 1
            except OSError:
                pass
        return self._disk.get(key)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._disk, name)

    def __setattr__(self, name: str, value: Any) -> None:
        # Counter updates (hits/misses) must land on the real store, not
        # shadow it on the proxy.
        if name in self._OWN_ATTRS:
            object.__setattr__(self, name, value)
        else:
            setattr(self._disk, name, value)

    def __len__(self) -> int:
        return len(self._disk)

    def __contains__(self, key: str) -> bool:
        return key in self._disk


#: The per-process injector the batch pool workers consult (installed by the
#: pool initialiser from the environment switch; a no-op plan by default).
_PROCESS_INJECTOR: Optional[FaultInjector] = None


def install_process_injector(
    plan: Optional[FaultPlan] = None,
) -> FaultInjector:
    """Install this process's injector (explicit plan, else the env switch)."""
    global _PROCESS_INJECTOR
    _PROCESS_INJECTOR = (
        FaultInjector(plan) if plan is not None else FaultInjector.from_env()
    )
    return _PROCESS_INJECTOR


def process_injector() -> FaultInjector:
    """The installed injector, installing the env-derived one on first use."""
    global _PROCESS_INJECTOR
    if _PROCESS_INJECTOR is None:
        _PROCESS_INJECTOR = FaultInjector.from_env()
    return _PROCESS_INJECTOR
