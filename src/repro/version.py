"""Package version resolution.

The single source of truth is the installed distribution metadata (the
``vhdl-ifa`` distribution declared in ``pyproject.toml``); running from a
plain checkout without an install falls back to the constant below, which is
kept in sync with ``pyproject.toml``.  This module is a leaf on purpose —
``repro.cli --version`` and ``GET /version`` on the serve mode both resolve
through :func:`version` without importing any analysis machinery.
"""

from __future__ import annotations

#: Fallback for uninstalled checkouts; mirrors ``project.version``.
__version__ = "1.0.0"

#: The distribution name the package installs under.
DISTRIBUTION = "vhdl-ifa"


def version() -> str:
    """The package version, from installed metadata when available."""
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - stdlib since 3.8
        return __version__
    try:
        return metadata.version(DISTRIBUTION)
    except metadata.PackageNotFoundError:
        return __version__
