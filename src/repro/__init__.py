"""Reproduction of *Information Flow Analysis for VHDL* (Tolstrup, Nielson &
Nielson, PaCT 2005).

The package provides:

* a frontend for the VHDL1 fragment defined in the paper (:mod:`repro.vhdl`);
* a structural-operational-semantics simulator with delta cycles
  (:mod:`repro.semantics`);
* the Reaching Definitions analyses and the Information Flow analysis of the
  paper, together with Kemmerer's baseline (:mod:`repro.analysis`);
* a small Datalog-style constraint solver standing in for the Succinct Solver
  (:mod:`repro.solver`);
* an AES-128 workload generator reproducing the paper's evaluation programs
  (:mod:`repro.aes`);
* security-policy checking on the resulting flow graphs (:mod:`repro.security`).

The most convenient entry point is :func:`repro.analyze`, which parses VHDL1
source text, elaborates it and runs the full improved Information Flow
analysis, returning a :class:`repro.analysis.flowgraph.FlowGraph`.
"""

from repro.analysis.api import (
    AnalysisResult,
    analyze,
    analyze_design,
    analyze_kemmerer,
)
from repro.analysis.flowgraph import FlowGraph
from repro.version import __version__, version
from repro.vhdl.parser import parse_program
from repro.vhdl.elaborate import elaborate
from repro.workspace import CheckResult, Workspace

__all__ = [
    "AnalysisResult",
    "CheckResult",
    "FlowGraph",
    "Workspace",
    "analyze",
    "analyze_design",
    "analyze_kemmerer",
    "parse_program",
    "elaborate",
    "version",
    "__version__",
]
