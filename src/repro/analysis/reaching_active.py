"""Reaching Definitions analysis for *active* signal values (Table 4).

The analysis is per process and has two components over the complete lattice
``P(Sig × Lab)``:

* the **over-approximation** ``RD∪ϕ`` — which assignments *may* have made a
  signal active when execution reaches a given label; and
* the **under-approximation** ``RD∩ϕ`` — which assignments *must* have made a
  signal active.

Both share the same ``kill``/``gen`` functions:

* a signal assignment ``[s <= e]^l`` kills every other active definition of
  ``s`` in the same process and generates ``(s, l)``;
* a ``wait`` statement kills *all* active definitions (synchronisation turns
  active values into present values and clears the delta slot);
* every other block is the identity.

The under-approximation combines incoming information with the paper's dotted
intersection ``⋂˙`` (``⋂˙ ∅ = ∅``), which guarantees ``RD∩ϕ ⊆ RD∪ϕ`` in the
least solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.cfg.builder import ProcessCFG
from repro.cfg.labels import Block, BlockKind
from repro.dataflow.framework import DataflowInstance, DataflowSolution, JoinMode
from repro.dataflow.worklist import solve

SigDef = Tuple[str, int]
"""A pair ``(signal, label)``: "the assignment at ``label`` made ``signal`` active"."""


@dataclass
class ActiveSignalsResult:
    """Result of the active-signals analysis for one process."""

    process_name: str
    over_entry: Dict[int, FrozenSet[SigDef]]
    over_exit: Dict[int, FrozenSet[SigDef]]
    under_entry: Dict[int, FrozenSet[SigDef]]
    under_exit: Dict[int, FrozenSet[SigDef]]

    def over_entry_of(self, label: int) -> FrozenSet[SigDef]:
        """``RD∪ϕ_entry(l)`` (``∅`` for labels of other processes)."""
        return self.over_entry.get(label, frozenset())

    def under_entry_of(self, label: int) -> FrozenSet[SigDef]:
        """``RD∩ϕ_entry(l)`` (``∅`` for labels of other processes)."""
        return self.under_entry.get(label, frozenset())

    def may_be_active_at(self, label: int) -> FrozenSet[str]:
        """``fst(RD∪ϕ_entry(l))``: signals that may be active at ``l``."""
        return frozenset(signal for signal, _ in self.over_entry_of(label))

    def must_be_active_at(self, label: int) -> FrozenSet[str]:
        """``fst(RD∩ϕ_entry(l))``: signals that must be active at ``l``."""
        return frozenset(signal for signal, _ in self.under_entry_of(label))


# ---------------------------------------------------------------------------
# kill / gen (Table 4)
# ---------------------------------------------------------------------------


def kill_active(block: Block, cfg: ProcessCFG) -> FrozenSet[SigDef]:
    """``kill^i_RDϕ`` of Table 4.

    * ``[s <= e]^l`` kills ``{(s, l') | B^{l'} assigns to s in process i}``;
    * ``[wait on S until e]^l`` kills ``{(s, l') | B^{l'} assigns to s in
      process i}`` for *every* signal ``s`` (all active definitions die at a
      synchronisation point);
    * every other block kills nothing.
    """
    if block.kind is BlockKind.SIGNAL_ASSIGN:
        signal = block.statement.target
        return frozenset(
            (signal, label) for label in cfg.assignment_labels_of_signal(signal)
        )
    if block.kind is BlockKind.WAIT:
        killed = set()
        for other in cfg.blocks.values():
            if other.kind is BlockKind.SIGNAL_ASSIGN:
                killed.add((other.statement.target, other.label))
        return frozenset(killed)
    return frozenset()


def gen_active(block: Block) -> FrozenSet[SigDef]:
    """``gen^i_RDϕ`` of Table 4: signal assignments generate ``{(s, l)}``."""
    if block.kind is BlockKind.SIGNAL_ASSIGN:
        return frozenset({(block.statement.target, block.label)})
    return frozenset()


# ---------------------------------------------------------------------------
# Analysis driver
# ---------------------------------------------------------------------------


def _build_instance(cfg: ProcessCFG, join_mode: JoinMode) -> DataflowInstance:
    labels = frozenset(cfg.blocks)
    kill = {label: kill_active(block, cfg) for label, block in cfg.blocks.items()}
    gen = {label: gen_active(block) for label, block in cfg.blocks.items()}
    return DataflowInstance(
        labels=labels,
        flow=frozenset(cfg.flow),
        extremal_labels=frozenset({cfg.entry_label}),
        extremal_value={cfg.entry_label: frozenset()},
        kill=kill,
        gen=gen,
        join_mode=join_mode,
    )


def analyze_active_signals(cfg: ProcessCFG) -> ActiveSignalsResult:
    """Run both components of Table 4 on one process and package the result."""
    over: DataflowSolution = solve(_build_instance(cfg, JoinMode.UNION))
    under: DataflowSolution = solve(_build_instance(cfg, JoinMode.INTERSECTION_DOTTED))
    return ActiveSignalsResult(
        process_name=cfg.name,
        over_entry=dict(over.entry),
        over_exit=dict(over.exit),
        under_entry=dict(under.entry),
        under_exit=dict(under.exit),
    )


def analyze_all_active_signals(
    cfgs: Dict[str, ProcessCFG]
) -> Dict[str, ActiveSignalsResult]:
    """Run the active-signals analysis for every process of a program."""
    return {name: analyze_active_signals(cfg) for name, cfg in cfgs.items()}
