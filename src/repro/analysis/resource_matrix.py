"""The Resource Matrix data structure used by the Information Flow analysis.

The local dependency analysis (Table 6) and the closure rules (Tables 8 and 9)
manipulate sets ``RM ⊆ (Var ∪ Sig) × Lab × {M0, M1, R0, R1}``:

* ``(n, l, M0)`` — the variable or *present value* of signal ``n`` might be
  modified at label ``l``;
* ``(n, l, M1)`` — the *active value* of signal ``n`` might be modified at ``l``;
* ``(n, l, R0)`` — the variable or present value of ``n`` might be read at ``l``;
* ``(n, l, R1)`` — the active value of ``n`` is read at ``l`` by the
  synchronisation performed by a ``wait`` statement.

Resource names for the improved analysis (Table 9) use the suffixes ``◦`` and
``•`` for incoming and outgoing values; :func:`incoming_node` /
:func:`outgoing_node` build these names uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple


class Access(Enum):
    """The four access kinds recorded in the Resource Matrix."""

    M0 = "M0"
    """Modification of a variable or of the present value of a signal."""

    M1 = "M1"
    """Modification of the active value of a signal."""

    R0 = "R0"
    """Read of a variable or of the present value of a signal."""

    R1 = "R1"
    """Read of active values by the synchronisation at a ``wait`` statement."""

    @property
    def is_read(self) -> bool:
        """True for ``R0``/``R1``."""
        return self in (Access.R0, Access.R1)

    @property
    def is_modify(self) -> bool:
        """True for ``M0``/``M1``."""
        return self in (Access.M0, Access.M1)


INCOMING_SUFFIX = "○"  # ◦ (white circle)
OUTGOING_SUFFIX = "•"  # • (bullet)


def incoming_node(name: str) -> str:
    """The incoming-value node ``n◦`` of resource ``name`` (Section 5.3)."""
    return f"{name}{INCOMING_SUFFIX}"


def outgoing_node(name: str) -> str:
    """The outgoing-value node ``n•`` of resource ``name`` (Section 5.3)."""
    return f"{name}{OUTGOING_SUFFIX}"


def base_resource(name: str) -> str:
    """Strip a ``◦``/``•`` suffix, returning the underlying resource name."""
    if name.endswith(INCOMING_SUFFIX) or name.endswith(OUTGOING_SUFFIX):
        return name[:-1]
    return name


def is_incoming(name: str) -> bool:
    """True when ``name`` is an incoming node ``n◦``."""
    return name.endswith(INCOMING_SUFFIX)


def is_outgoing(name: str) -> bool:
    """True when ``name`` is an outgoing node ``n•``."""
    return name.endswith(OUTGOING_SUFFIX)


@dataclass(frozen=True, order=True)
class Entry:
    """A single Resource Matrix entry ``(name, label, access)``."""

    name: str
    label: int
    access: Access

    def __repr__(self) -> str:
        return f"({self.name}, {self.label}, {self.access.value})"


class ResourceMatrix:
    """A mutable set of :class:`Entry` records with the lookups the rules need."""

    def __init__(self, entries: Optional[Iterable[Entry]] = None):
        self._entries: Set[Entry] = set(entries or ())

    # -- basic protocol --------------------------------------------------------

    def __contains__(self, entry: Entry) -> bool:
        return entry in self._entries

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceMatrix):
            return self._entries == other._entries
        return NotImplemented

    def __repr__(self) -> str:
        return f"ResourceMatrix({len(self._entries)} entries)"

    def copy(self) -> "ResourceMatrix":
        """A shallow copy (entries are immutable)."""
        return ResourceMatrix(self._entries)

    def entries(self) -> FrozenSet[Entry]:
        """The entry set as a frozenset."""
        return frozenset(self._entries)

    # -- mutation ------------------------------------------------------------------

    def add(self, name: str, label: int, access: Access) -> bool:
        """Add an entry; returns True when it was not already present."""
        entry = Entry(name, label, access)
        if entry in self._entries:
            return False
        self._entries.add(entry)
        return True

    def add_entry(self, entry: Entry) -> bool:
        """Add a pre-built entry; returns True when it was not already present."""
        if entry in self._entries:
            return False
        self._entries.add(entry)
        return True

    def update(self, other: "ResourceMatrix") -> None:
        """In-place union with another matrix."""
        self._entries |= other._entries

    def union(self, other: "ResourceMatrix") -> "ResourceMatrix":
        """The union of two matrices as a new matrix."""
        return ResourceMatrix(self._entries | other._entries)

    # -- lookups used by the closure rules ----------------------------------------------

    def labels(self) -> FrozenSet[int]:
        """All labels mentioned by some entry."""
        return frozenset(entry.label for entry in self._entries)

    def names(self) -> FrozenSet[str]:
        """All resource names mentioned by some entry."""
        return frozenset(entry.name for entry in self._entries)

    def at_label(self, label: int) -> List[Entry]:
        """All entries at ``label``."""
        return [entry for entry in self._entries if entry.label == label]

    def reads_at(self, label: int) -> List[Entry]:
        """Read entries (``R0``/``R1``) at ``label``."""
        return [
            entry
            for entry in self._entries
            if entry.label == label and entry.access.is_read
        ]

    def modifications_at(self, label: int) -> List[Entry]:
        """Modification entries (``M0``/``M1``) at ``label``."""
        return [
            entry
            for entry in self._entries
            if entry.label == label and entry.access.is_modify
        ]

    def with_access(self, access: Access) -> List[Entry]:
        """All entries with the given access kind."""
        return [entry for entry in self._entries if entry.access is access]

    def reads_of(self, name: str, access: Access = Access.R0) -> List[Entry]:
        """All entries reading ``name`` with the given access kind."""
        return [
            entry
            for entry in self._entries
            if entry.name == name and entry.access is access
        ]

    def index_by_label(self) -> Dict[int, List[Entry]]:
        """Entries grouped by label (used for efficient closure iteration)."""
        grouped: Dict[int, List[Entry]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.label, []).append(entry)
        return grouped

    # -- rendering -------------------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable rendering, sorted by label then name."""
        lines = ["label  access  resource"]
        for entry in sorted(self._entries, key=lambda e: (e.label, e.access.value, e.name)):
            lines.append(f"{entry.label:>5}  {entry.access.value:<6}  {entry.name}")
        return "\n".join(lines)
