"""The Resource Matrix data structure used by the Information Flow analysis.

The local dependency analysis (Table 6) and the closure rules (Tables 8 and 9)
manipulate sets ``RM ⊆ (Var ∪ Sig) × Lab × {M0, M1, R0, R1}``:

* ``(n, l, M0)`` — the variable or *present value* of signal ``n`` might be
  modified at label ``l``;
* ``(n, l, M1)`` — the *active value* of signal ``n`` might be modified at ``l``;
* ``(n, l, R0)`` — the variable or present value of ``n`` might be read at ``l``;
* ``(n, l, R1)`` — the active value of ``n`` is read at ``l`` by the
  synchronisation performed by a ``wait`` statement.

Storage is *label-columnar*: a matrix maps each label to four name-bitsets,
one per access kind, with resource names interned into a
:class:`~repro.dataflow.universe.FactUniverse`.  Adding an entry sets one bit;
union of matrices is a per-label ``|``; the closure fixpoint propagates whole
``R0`` columns with single OR operations instead of hashing one :class:`Entry`
object per (name, label) pair.  The :class:`Entry`-based view (iteration,
``entries()``, the ``*_at`` lookups) is decoded on demand at the boundary and
yields entries in a canonical sorted order, so renderings and reports are
byte-stable across runs.

The name universe is **per session**, not process-global: every analysis run
threads one explicit :class:`FactUniverse` through the pipeline (see
:func:`repro.analysis.api.analyze_design`), so independent analyses neither
share nor leak interned names, and long-lived servers analysing many unrelated
designs do not pay for every name ever seen in the width of later bitsets.
Matrices created without an explicit universe get a private fresh one.  All
bitset-level operations between two matrices take the fast path when the
universes are the *same object*; otherwise they fall back to re-encoding by
name, so cross-session comparisons (the equivalence tests rely on these)
remain correct.

Resource names for the improved analysis (Table 9) use the suffixes ``◦`` and
``•`` for incoming and outgoing values; :func:`incoming_node` /
:func:`outgoing_node` build these names uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.dataflow.universe import FactUniverse


class Access(Enum):
    """The four access kinds recorded in the Resource Matrix."""

    M0 = "M0"
    """Modification of a variable or of the present value of a signal."""

    M1 = "M1"
    """Modification of the active value of a signal."""

    R0 = "R0"
    """Read of a variable or of the present value of a signal."""

    R1 = "R1"
    """Read of active values by the synchronisation at a ``wait`` statement."""

    @property
    def is_read(self) -> bool:
        """True for ``R0``/``R1``."""
        return self in (Access.R0, Access.R1)

    @property
    def is_modify(self) -> bool:
        """True for ``M0``/``M1``."""
        return self in (Access.M0, Access.M1)

    @property
    def column(self) -> int:
        """The slot of this access kind in a matrix's per-label column list."""
        return _COLUMN_OF[self]


_COLUMN_OF: Dict[Access, int] = {
    Access.M0: 0,
    Access.M1: 1,
    Access.R0: 2,
    Access.R1: 3,
}
_ACCESS_ORDER: Tuple[Access, ...] = (Access.M0, Access.M1, Access.R0, Access.R1)
_READ_COLUMNS = (Access.R0.column, Access.R1.column)
_MODIFY_COLUMNS = (Access.M0.column, Access.M1.column)


INCOMING_SUFFIX = "○"  # ◦ (white circle)
OUTGOING_SUFFIX = "•"  # • (bullet)


def incoming_node(name: str) -> str:
    """The incoming-value node ``n◦`` of resource ``name`` (Section 5.3)."""
    return f"{name}{INCOMING_SUFFIX}"


def outgoing_node(name: str) -> str:
    """The outgoing-value node ``n•`` of resource ``name`` (Section 5.3)."""
    return f"{name}{OUTGOING_SUFFIX}"


def base_resource(name: str) -> str:
    """Strip a ``◦``/``•`` suffix, returning the underlying resource name."""
    if name.endswith(INCOMING_SUFFIX) or name.endswith(OUTGOING_SUFFIX):
        return name[:-1]
    return name


def is_incoming(name: str) -> bool:
    """True when ``name`` is an incoming node ``n◦``."""
    return name.endswith(INCOMING_SUFFIX)


def is_outgoing(name: str) -> bool:
    """True when ``name`` is an outgoing node ``n•``."""
    return name.endswith(OUTGOING_SUFFIX)


@dataclass(frozen=True, order=True)
class Entry:
    """A single Resource Matrix entry ``(name, label, access)``."""

    name: str
    label: int
    access: Access

    def __repr__(self) -> str:
        return f"({self.name}, {self.label}, {self.access.value})"


class ResourceMatrix:
    """A label-columnar entry set with the lookups the closure rules need.

    Each label row is a four-slot list of name-bitsets indexed by
    :attr:`Access.column`; rows are created on first write and always hold at
    least one set bit.  Bit positions are allocated by the matrix's
    :attr:`universe`; matrices sharing a universe compare and combine at the
    bitset level, others fall back to name-based re-encoding.
    """

    __slots__ = ("_cols", "_universe")

    def __init__(
        self,
        entries: Optional[Iterable[Entry]] = None,
        universe: Optional[FactUniverse] = None,
    ):
        self._universe: FactUniverse = (
            universe if universe is not None else FactUniverse()
        )
        self._cols: Dict[int, List[int]] = {}
        for entry in entries or ():
            self.add_entry(entry)

    @property
    def universe(self) -> FactUniverse:
        """The name universe allocating this matrix's bit positions."""
        return self._universe

    def sorted_names(self, bits: int) -> List[str]:
        """The resource names of a name-bitset in lexical order."""
        return sorted(self._universe.decode_iter(bits))

    def decode_names(self, bits: int) -> FrozenSet[str]:
        """The resource names of a name-bitset."""
        return self._universe.decode(bits)

    # -- basic protocol --------------------------------------------------------

    def __contains__(self, entry: Entry) -> bool:
        if entry.name not in self._universe:
            return False
        row = self._cols.get(entry.label)
        if row is None:
            return False
        return bool(
            row[entry.access.column] >> self._universe.index_of(entry.name) & 1
        )

    def __iter__(self) -> Iterator[Entry]:
        """Entries in canonical ``(label, access, name)`` order."""
        for label in sorted(self._cols):
            row = self._cols[label]
            for access in _ACCESS_ORDER:
                for name in self.sorted_names(row[access.column]):
                    yield Entry(name, label, access)

    def __len__(self) -> int:
        return sum(bits.bit_count() for row in self._cols.values() for bits in row)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResourceMatrix):
            if self._universe is other._universe:
                return self._cols == other._cols
            return self._canonical() == other._canonical()
        return NotImplemented

    def _canonical(self) -> Dict[int, Tuple[FrozenSet[str], ...]]:
        """A universe-independent rendering, for cross-session comparison."""
        decode = self._universe.decode
        return {
            label: tuple(decode(bits) for bits in row)
            for label, row in self._cols.items()
        }

    def __repr__(self) -> str:
        return f"ResourceMatrix({len(self)} entries)"

    def copy(self) -> "ResourceMatrix":
        """An independent copy (rows are duplicated, the universe is shared)."""
        clone = ResourceMatrix(universe=self._universe)
        clone._cols = {label: list(row) for label, row in self._cols.items()}
        return clone

    def entries(self) -> FrozenSet[Entry]:
        """The entry set as a frozenset."""
        return frozenset(self)

    # -- mutation ------------------------------------------------------------------

    def add(self, name: str, label: int, access: Access) -> bool:
        """Add an entry; returns True when it was not already present."""
        bit = 1 << self._universe.intern(name)
        row = self._cols.get(label)
        if row is None:
            row = self._cols[label] = [0, 0, 0, 0]
        column = access.column
        if row[column] & bit:
            return False
        row[column] |= bit
        return True

    def add_entry(self, entry: Entry) -> bool:
        """Add a pre-built entry; returns True when it was not already present."""
        return self.add(entry.name, entry.label, entry.access)

    def update(self, other: "ResourceMatrix") -> None:
        """In-place union with another matrix (per-label bitwise OR)."""
        cols = self._cols
        if other._universe is self._universe:
            for label, other_row in other._cols.items():
                row = cols.get(label)
                if row is None:
                    cols[label] = list(other_row)
                else:
                    row[0] |= other_row[0]
                    row[1] |= other_row[1]
                    row[2] |= other_row[2]
                    row[3] |= other_row[3]
            return
        # Foreign universe: bit positions are not comparable, re-encode by name.
        encode = self._universe.encode
        decode = other._universe.decode_iter
        for label, other_row in other._cols.items():
            for access in _ACCESS_ORDER:
                bits = other_row[access.column]
                if bits:
                    self.or_bits(label, access, encode(decode(bits)))

    def union(self, other: "ResourceMatrix") -> "ResourceMatrix":
        """The union of two matrices as a new matrix."""
        result = self.copy()
        result.update(other)
        return result

    # -- columnar accessors (the hot-path API) ---------------------------------

    def bits_at(self, label: int, access: Access) -> int:
        """The name-bitset stored at ``(label, access)``."""
        row = self._cols.get(label)
        return row[access.column] if row is not None else 0

    def or_bits(self, label: int, access: Access, bits: int) -> bool:
        """OR ``bits`` into ``(label, access)``; True when anything was new."""
        if not bits:
            return False
        row = self._cols.get(label)
        if row is None:
            self._cols[label] = row = [0, 0, 0, 0]
        column = access.column
        if bits & ~row[column]:
            row[column] |= bits
            return True
        return False

    def column(self, access: Access) -> Dict[int, int]:
        """The whole column ``label → name-bitset`` for one access kind."""
        index = access.column
        return {
            label: row[index] for label, row in self._cols.items() if row[index]
        }

    def read_bits_at(self, label: int) -> int:
        """``R0 | R1`` bits at ``label``."""
        row = self._cols.get(label)
        if row is None:
            return 0
        return row[_READ_COLUMNS[0]] | row[_READ_COLUMNS[1]]

    def modify_bits_at(self, label: int) -> int:
        """``M0 | M1`` bits at ``label``."""
        row = self._cols.get(label)
        if row is None:
            return 0
        return row[_MODIFY_COLUMNS[0]] | row[_MODIFY_COLUMNS[1]]

    def iter_rows(self) -> Iterator[Tuple[int, List[int]]]:
        """The raw ``(label, [M0, M1, R0, R1])`` rows (read-only use)."""
        return iter(self._cols.items())

    # -- lookups used by the closure rules ----------------------------------------------

    def labels(self) -> FrozenSet[int]:
        """All labels mentioned by some entry."""
        return frozenset(self._cols)

    def names(self) -> FrozenSet[str]:
        """All resource names mentioned by some entry."""
        bits = 0
        for row in self._cols.values():
            bits |= row[0] | row[1] | row[2] | row[3]
        return self.decode_names(bits)

    def _entries_of_row(self, label: int, accesses: Iterable[Access]) -> List[Entry]:
        row = self._cols.get(label)
        if row is None:
            return []
        return [
            Entry(name, label, access)
            for access in accesses
            for name in self.sorted_names(row[access.column])
        ]

    def at_label(self, label: int) -> List[Entry]:
        """All entries at ``label``."""
        return self._entries_of_row(label, _ACCESS_ORDER)

    def reads_at(self, label: int) -> List[Entry]:
        """Read entries (``R0``/``R1``) at ``label``."""
        return self._entries_of_row(label, (Access.R0, Access.R1))

    def modifications_at(self, label: int) -> List[Entry]:
        """Modification entries (``M0``/``M1``) at ``label``."""
        return self._entries_of_row(label, (Access.M0, Access.M1))

    def with_access(self, access: Access) -> List[Entry]:
        """All entries with the given access kind."""
        return [
            Entry(name, label, access)
            for label in sorted(self._cols)
            for name in self.sorted_names(self._cols[label][access.column])
        ]

    def reads_of(self, name: str, access: Access = Access.R0) -> List[Entry]:
        """All entries reading ``name`` with the given access kind."""
        if name not in self._universe:
            return []
        bit = 1 << self._universe.index_of(name)
        column = access.column
        return [
            Entry(name, label, access)
            for label in sorted(self._cols)
            if self._cols[label][column] & bit
        ]

    def index_by_label(self) -> Dict[int, List[Entry]]:
        """Entries grouped by label (used for efficient closure iteration)."""
        return {label: self.at_label(label) for label in self._cols}

    # -- rendering -------------------------------------------------------------------

    def to_table(self) -> str:
        """Human-readable rendering, sorted by label then name."""
        lines = ["label  access  resource"]
        for entry in sorted(self, key=lambda e: (e.label, e.access.value, e.name)):
            lines.append(f"{entry.label:>5}  {entry.access.value:<6}  {entry.name}")
        return "\n".join(lines)
