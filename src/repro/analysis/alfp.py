"""ALFP-style encoding of the closure rules, solved with :mod:`repro.solver`.

The paper implements Tables 7–9 as clauses for the Succinct Solver.  This
module reproduces that encoding on the replacement solver: the analysis inputs
(the local Resource Matrix, the Reaching Definitions results, the cross-flow
co-occurrence relation, the port classification) become facts, the rules of
Tables 7, 8 and 9 become definite Horn clauses, and the least model's
``rm_gl`` relation is read back as a :class:`ResourceMatrix`.

The direct implementations (:mod:`repro.analysis.closure`,
:mod:`repro.analysis.improved`) remain the primary path; this encoding exists
to mirror the paper's implementation strategy and to cross-check the direct
code (benchmark E6, ``tests/test_alfp.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.improved import allocate_outgoing_labels
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.analysis.reaching_defs import INITIAL_LABEL, ReachingDefinitionsResult
from repro.analysis.resource_matrix import (
    Access,
    ResourceMatrix,
    incoming_node,
    outgoing_node,
)
from repro.cfg.builder import ProgramCFG
from repro.dataflow.universe import FactUniverse
from repro.solver.clauses import Rule
from repro.solver.engine import Database, SolverEngine
from repro.solver.terms import Atom, Constant
from repro.vhdl.elaborate import Design

#: Predicate names used by the encoding (kept close to the paper's notation).
RM_LO = "rm_lo"
RM_GL = "rm_gl"
RD_ENTRY = "rd_entry"          # (n, l_def, l_use): (n, l_def) ∈ RDcf_entry(l_use)
RD_PHI_ENTRY = "rd_phi_entry"  # (s, l_def, l_wait): (s, l_def) ∈ RD∪ϕ_entry(l_wait)
RD_DAGGER = "rd_dagger"        # RD†
RD_DAGGER_PHI = "rd_dagger_phi"  # RD†ϕ
OCCURS_IN_CF = "occurs_in_cf"
COOCCUR = "cooccur"
WS = "ws"
IS_INITIAL = "is_initial"
IN_PORT = "in_port"
INCOMING_NAME = "incoming_name"
OUTGOING_LABEL = "outgoing_label"


def _add_input_facts(
    engine: SolverEngine,
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    active: Dict[str, ActiveSignalsResult],
    reaching: ReachingDefinitionsResult,
) -> None:
    """Materialise the analysis inputs as facts."""
    for entry in rm_lo:
        engine.add_fact(RM_LO, entry.name, entry.label, entry.access.value)

    for label in program_cfg.labels:
        for name, def_label in reaching.entry_of(label):
            engine.add_fact(RD_ENTRY, name, def_label, label)

    for wait_label in program_cfg.wait_labels:
        owner = program_cfg.process_of_label(wait_label)
        for signal, def_label in active[owner].over_entry_of(wait_label):
            engine.add_fact(RD_PHI_ENTRY, signal, def_label, wait_label)
        if program_cfg.label_occurs_in_cross_flow(wait_label):
            engine.add_fact(OCCURS_IN_CF, wait_label)
        engine.add_fact(WS, wait_label)

    for li in program_cfg.wait_labels:
        for lj in program_cfg.wait_labels:
            if program_cfg.labels_cooccur_in_cross_flow(li, lj):
                engine.add_fact(COOCCUR, li, lj)

    engine.add_fact(IS_INITIAL, INITIAL_LABEL)


def _add_table7_rules(engine: SolverEngine) -> None:
    """The specialisation rules of Table 7."""
    engine.add_rule(
        Rule(
            name="RD for active signals",
            head=Atom.of(RD_DAGGER_PHI, "S", "Ldef", "Lwait"),
            body=(
                Atom.of(RM_LO, "S", "Lwait", Constant("R1")),
                Atom.of(RD_PHI_ENTRY, "S", "Ldef", "Lwait"),
                Atom.of(OCCURS_IN_CF, "Lwait"),
            ),
        )
    )
    engine.add_rule(
        Rule(
            name="RD for present signals and local variables",
            head=Atom.of(RD_DAGGER, "N", "Ldef", "Luse"),
            body=(
                Atom.of(RM_LO, "N", "Luse", Constant("R0")),
                Atom.of(RD_ENTRY, "N", "Ldef", "Luse"),
            ),
        )
    )


def _add_table8_rules(engine: SolverEngine) -> None:
    """The closure rules of Table 8."""
    for access in ("R0", "R1", "M0", "M1"):
        engine.add_rule(
            Rule(
                name=f"Initialization ({access})",
                head=Atom.of(RM_GL, "N", "L", Constant(access)),
                body=(Atom.of(RM_LO, "N", "L", Constant(access)),),
            )
        )
    engine.add_rule(
        Rule(
            name="Present values and local variables",
            head=Atom.of(RM_GL, "N", "L", Constant("R0")),
            body=(
                Atom.of(RD_DAGGER, "Np", "Lp", "L"),
                Atom.of(RM_GL, "N", "Lp", Constant("R0")),
            ),
        )
    )
    engine.add_rule(
        Rule(
            name="Synchronized values",
            head=Atom.of(RM_GL, "S", "L", Constant("R0")),
            body=(
                Atom.of(RD_DAGGER, "Sp", "Li", "L"),
                Atom.of(COOCCUR, "Li", "Lj"),
                Atom.of(RD_DAGGER_PHI, "Sp", "Lpp", "Lj"),
                Atom.of(RM_GL, "S", "Lpp", Constant("R0")),
            ),
        )
    )


def _add_table9_facts_and_rules(
    engine: SolverEngine,
    design: Design,
    outgoing_labels: Dict[str, int],
) -> None:
    """The improved-analysis rules of Table 9."""
    resources = set(design.signals) | set(design.variable_names())
    for name in resources:
        engine.add_fact(INCOMING_NAME, name, incoming_node(name))
    for name in design.input_ports:
        engine.add_fact(IN_PORT, name)
    for name, label in outgoing_labels.items():
        engine.add_fact(OUTGOING_LABEL, name, label)
        engine.add_fact(RM_GL, outgoing_node(name), label, Constant("M1"))  # [Outgoing values]

    engine.add_rule(
        Rule(
            name="Initial values",
            head=Atom.of(RM_GL, "Ninc", "L", Constant("R0")),
            body=(
                Atom.of(RD_DAGGER, "N", "Q", "L"),
                Atom.of(IS_INITIAL, "Q"),
                Atom.of(INCOMING_NAME, "N", "Ninc"),
            ),
        )
    )
    engine.add_rule(
        Rule(
            name="Incoming values",
            head=Atom.of(RM_GL, "Ninc", "L", Constant("R0")),
            body=(
                Atom.of(RD_DAGGER, "N", "Lw", "L"),
                Atom.of(WS, "Lw"),
                Atom.of(IN_PORT, "N"),
                Atom.of(INCOMING_NAME, "N", "Ninc"),
            ),
        )
    )
    engine.add_rule(
        Rule(
            name="Outcoming values",
            head=Atom.of(RM_GL, "Np", "Lout", Constant("R0")),
            body=(
                Atom.of(WS, "L"),
                Atom.of(RD_DAGGER_PHI, "N", "Lp", "L"),
                Atom.of(RM_GL, "Np", "Lp", Constant("R0")),
                Atom.of(OUTGOING_LABEL, "N", "Lout"),
            ),
        )
    )


def encode(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    active: Dict[str, ActiveSignalsResult],
    reaching: ReachingDefinitionsResult,
    design: Optional[Design] = None,
    improved: bool = False,
) -> SolverEngine:
    """Build the complete clause system for one analysis run."""
    engine = SolverEngine()
    _add_input_facts(engine, program_cfg, rm_lo, active, reaching)
    _add_table7_rules(engine)
    _add_table8_rules(engine)
    if improved:
        if design is None:
            raise ValueError("the improved encoding needs the design for its ports")
        outgoing_labels = allocate_outgoing_labels(program_cfg, design)
        _add_table9_facts_and_rules(engine, design, outgoing_labels)
    return engine


def resource_matrix_from_database(
    database: Database, universe: Optional[FactUniverse] = None
) -> ResourceMatrix:
    """Read the ``rm_gl`` relation of the least model back into a matrix.

    ``universe`` optionally names the session universe the matrix should
    intern into (so it compares bitset-to-bitset with the direct pipeline's
    result); by default it gets a private fresh one.
    """
    matrix = ResourceMatrix(universe=universe)
    for name, label, access in database.relation(RM_GL):
        matrix.add(name, label, Access(access))
    return matrix


def closure_via_solver(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    active: Dict[str, ActiveSignalsResult],
    reaching: ReachingDefinitionsResult,
    design: Optional[Design] = None,
    improved: bool = False,
) -> ResourceMatrix:
    """Solve the clause system and return the global Resource Matrix."""
    engine = encode(program_cfg, rm_lo, active, reaching, design, improved)
    database = engine.solve()
    return resource_matrix_from_database(database, universe=rm_lo.universe)
