"""Closure of the Resource Matrix driven by Reaching Definitions (Table 8).

The global Resource Matrix ``RM_gl`` is the least set closed under:

* **[Initialization]** — ``RM_lo ⊆ RM_gl``;
* **[Present values and local variables]** — if the construct at label ``l``
  uses a definition made at ``l'`` (``(n', l') ∈ RD†(l)``) then everything read
  at ``l'`` is also (indirectly) read at ``l``:
  ``(n, l', R0) ∈ RM_gl ⇒ (n, l, R0) ∈ RM_gl``;
* **[Synchronized values]** — if the present value used at ``l`` was defined at
  the synchronisation point ``l_i`` (``(s', l_i) ∈ RD†(l)``), and at a
  synchronisation point ``l_j`` that may synchronise with ``l_i`` the signal's
  active value may stem from the assignment at ``l''``
  (``(s', l'') ∈ RD†ϕ(l_j)``), then everything read at ``l''`` is also read at
  ``l``: ``(s, l'', R0) ∈ RM_gl ⇒ (s, l, R0) ∈ RM_gl``.

Both closure rules have the same shape — *copy every ``R0`` entry from a source
label to a target label* — so the implementation first derives the set of copy
edges from ``RD†``/``RD†ϕ`` (they do not change during the closure) and then
runs a worklist fixpoint that propagates ``R0`` entries along them.  The ALFP
encoding in :mod:`repro.analysis.alfp` states the rules literally and is
cross-checked against this implementation in the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.analysis.resource_matrix import Access, Entry, ResourceMatrix
from repro.analysis.specialize import SpecializedRD
from repro.cfg.builder import ProgramCFG

CopyEdges = Dict[int, Set[int]]
"""Mapping ``source label -> set of target labels`` for ``R0`` propagation."""


@dataclass
class ClosureResult:
    """The global Resource Matrix together with the derived copy relation."""

    rm_global: ResourceMatrix
    copy_edges: CopyEdges = field(default_factory=dict)

    def __iter__(self):
        return iter(self.rm_global)


# ---------------------------------------------------------------------------
# Copy-edge derivation
# ---------------------------------------------------------------------------


def present_value_edges(specialized: SpecializedRD) -> CopyEdges:
    """Copy edges contributed by rule [Present values and local variables].

    For every ``(n', l') ∈ RD†(l)`` the reads of label ``l'`` must be copied to
    label ``l``.
    """
    edges: CopyEdges = {}
    for target, definitions in specialized.present.items():
        for _, source in definitions:
            edges.setdefault(source, set()).add(target)
    return edges


def synchronized_value_edges(
    program_cfg: ProgramCFG, specialized: SpecializedRD
) -> CopyEdges:
    """Copy edges contributed by rule [Synchronized values].

    For ``(s', l_i) ∈ RD†(l)`` with ``l_i`` a wait label, and every wait label
    ``l_j`` co-occurring with ``l_i`` in the cross-flow relation, each active
    definition ``(s', l'') ∈ RD†ϕ(l_j)`` yields the copy edge ``l'' → l``.
    """
    edges: CopyEdges = {}
    wait_labels = program_cfg.wait_labels
    for target, definitions in specialized.present.items():
        for signal, def_label in definitions:
            if def_label not in wait_labels:
                continue
            for sync_label in wait_labels:
                if not program_cfg.labels_cooccur_in_cross_flow(def_label, sync_label):
                    continue
                for active_signal, assign_label in specialized.active_at(sync_label):
                    if active_signal != signal:
                        continue
                    edges.setdefault(assign_label, set()).add(target)
    return edges


def merge_edges(*edge_maps: CopyEdges) -> CopyEdges:
    """Union several copy-edge maps."""
    merged: CopyEdges = {}
    for edges in edge_maps:
        for source, targets in edges.items():
            merged.setdefault(source, set()).update(targets)
    return merged


# ---------------------------------------------------------------------------
# Fixpoint
# ---------------------------------------------------------------------------


def propagate(
    seeds: Iterable[Entry],
    copy_edges: CopyEdges,
) -> ResourceMatrix:
    """Close ``seeds`` under ``R0`` propagation along ``copy_edges``.

    Non-``R0`` entries are kept unchanged; every ``R0`` entry ``(n, l, R0)``
    with a copy edge ``l → l*`` spawns ``(n, l*, R0)``, transitively.
    """
    matrix = ResourceMatrix()
    worklist: Deque[Entry] = deque()
    for entry in seeds:
        if matrix.add_entry(entry) and entry.access is Access.R0:
            worklist.append(entry)

    while worklist:
        entry = worklist.popleft()
        for target in copy_edges.get(entry.label, ()):
            new_entry = Entry(entry.name, target, Access.R0)
            if matrix.add_entry(new_entry):
                worklist.append(new_entry)
    return matrix


def global_resource_matrix(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    specialized: SpecializedRD,
) -> ClosureResult:
    """Compute ``RM_gl`` from ``RM_lo`` and the specialised RD results (Table 8)."""
    copy_edges = merge_edges(
        present_value_edges(specialized),
        synchronized_value_edges(program_cfg, specialized),
    )
    rm_global = propagate(rm_lo, copy_edges)
    return ClosureResult(rm_global=rm_global, copy_edges=copy_edges)
