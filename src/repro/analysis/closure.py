"""Closure of the Resource Matrix driven by Reaching Definitions (Table 8).

The global Resource Matrix ``RM_gl`` is the least set closed under:

* **[Initialization]** — ``RM_lo ⊆ RM_gl``;
* **[Present values and local variables]** — if the construct at label ``l``
  uses a definition made at ``l'`` (``(n', l') ∈ RD†(l)``) then everything read
  at ``l'`` is also (indirectly) read at ``l``:
  ``(n, l', R0) ∈ RM_gl ⇒ (n, l, R0) ∈ RM_gl``;
* **[Synchronized values]** — if the present value used at ``l`` was defined at
  the synchronisation point ``l_i`` (``(s', l_i) ∈ RD†(l)``), and at a
  synchronisation point ``l_j`` that may synchronise with ``l_i`` the signal's
  active value may stem from the assignment at ``l''``
  (``(s', l'') ∈ RD†ϕ(l_j)``), then everything read at ``l''`` is also read at
  ``l``: ``(s, l'', R0) ∈ RM_gl ⇒ (s, l, R0) ∈ RM_gl``.

Both closure rules have the same shape — *copy every ``R0`` entry from a source
label to a target label* — so the implementation first derives the set of copy
edges from ``RD†``/``RD†ϕ`` (they do not change during the closure) and then
solves the fixpoint **per label, not per entry**: the Resource Matrix stores
each label's ``R0`` reads as a name-bitset (see
:mod:`repro.analysis.resource_matrix`), the copy-edge graph is condensed into
its strongly connected components (iterative Tarjan), and the component DAG is
swept once in topological order, ORing whole bitsets along each edge.  The
final ``R0`` column of a label is the union of the seed columns of every label
that reaches it — one bitset OR per edge visit, instead of one worklist item
per (name, label) pair.  The original entry-at-a-time fixpoint is kept as
:func:`propagate_naive` and cross-checked in the test suite, alongside the
ALFP encoding in :mod:`repro.analysis.alfp` which states the rules literally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.resource_matrix import Access, Entry, ResourceMatrix
from repro.analysis.specialize import SpecializedRD
from repro.cfg.builder import ProgramCFG
from repro.dataflow import bitset

CopyEdges = Dict[int, Set[int]]
"""Mapping ``source label -> set of target labels`` for ``R0`` propagation."""

Seeds = Union[ResourceMatrix, Iterable[Entry]]
"""Seeds of the closure: a matrix (preferred, no decoding) or loose entries."""


@dataclass
class ClosureResult:
    """The global Resource Matrix together with the derived copy relation."""

    rm_global: ResourceMatrix
    copy_edges: CopyEdges = field(default_factory=dict)

    def __iter__(self):
        return iter(self.rm_global)


# ---------------------------------------------------------------------------
# Copy-edge derivation
# ---------------------------------------------------------------------------


def present_value_edges(specialized: SpecializedRD) -> CopyEdges:
    """Copy edges contributed by rule [Present values and local variables].

    For every ``(n', l') ∈ RD†(l)`` the reads of label ``l'`` must be copied to
    label ``l``.
    """
    edges: CopyEdges = {}
    for target, definitions in specialized.present.items():
        for _, source in definitions:
            edges.setdefault(source, set()).add(target)
    return edges


def synchronized_value_edges(
    program_cfg: ProgramCFG, specialized: SpecializedRD
) -> CopyEdges:
    """Copy edges contributed by rule [Synchronized values].

    For ``(s', l_i) ∈ RD†(l)`` with ``l_i`` a wait label, and every wait label
    ``l_j`` co-occurring with ``l_i`` in the cross-flow relation, each active
    definition ``(s', l'') ∈ RD†ϕ(l_j)`` yields the copy edge ``l'' → l``.
    """
    edges: CopyEdges = {}
    wait_labels = program_cfg.wait_labels
    for target, definitions in specialized.present.items():
        for signal, def_label in definitions:
            if def_label not in wait_labels:
                continue
            for sync_label in sorted(wait_labels):
                if not program_cfg.labels_cooccur_in_cross_flow(def_label, sync_label):
                    continue
                for active_signal, assign_label in specialized.active_at(sync_label):
                    if active_signal != signal:
                        continue
                    edges.setdefault(assign_label, set()).add(target)
    return edges


def merge_edges(*edge_maps: CopyEdges) -> CopyEdges:
    """Union several copy-edge maps."""
    merged: CopyEdges = {}
    for edges in edge_maps:
        for source, targets in edges.items():
            merged.setdefault(source, set()).update(targets)
    return merged


# ---------------------------------------------------------------------------
# Fixpoint
# ---------------------------------------------------------------------------


def _strongly_connected_components(
    nodes: Iterable[int], edge_lists: Dict[int, Tuple[int, ...]]
) -> Tuple[Dict[int, int], List[List[int]]]:
    """Iterative Tarjan over the copy-edge graph.

    Returns the component index of every node and the member lists, emitted in
    reverse topological order of the condensation (every component appears
    after all components reachable from it).
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    counter = 0
    stack: List[int] = []
    on_stack: Set[int] = set()
    comp_of: Dict[int, int] = {}
    components: List[List[int]] = []

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            descended = False
            children = edge_lists.get(node, ())
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    descended = True
                    break
                if child in on_stack and index[child] < lowlink[node]:
                    lowlink[node] = index[child]
            if descended:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                members: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp_of[member] = len(components)
                    members.append(member)
                    if member == node:
                        break
                components.append(members)
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return comp_of, components


def _as_matrix(seeds: Seeds) -> ResourceMatrix:
    if isinstance(seeds, ResourceMatrix):
        return seeds.copy()
    return ResourceMatrix(seeds)


def propagate(
    seeds: Seeds, copy_edges: CopyEdges, backend: Optional[str] = None
) -> ResourceMatrix:
    """Close ``seeds`` under ``R0`` propagation along ``copy_edges``.

    Non-``R0`` entries are kept unchanged.  The least fixpoint assigns every
    label the union of the seed ``R0`` name-bitsets of all labels that reach
    it in the copy-edge graph (including itself); it is computed by one
    topological sweep over the SCC condensation, ORing whole columns.

    ``backend`` picks the bitset representation for the sweep: ``"int"``
    (Python-int bitsets) or ``"words"`` (numpy word arrays); ``None`` asks
    :func:`repro.dataflow.bitset.backend_for` for the benchmarked default.
    Both produce the same matrix — the word sweep packs the seed column
    once, ORs rows in place, and unpacks at the end.
    """
    # Matrix seeds keep their (per-session) name universe via copy(); loose
    # entry seeds are interned into a private fresh one.
    matrix = _as_matrix(seeds)
    if not copy_edges:
        return matrix

    nodes: Set[int] = set(copy_edges)
    for targets in copy_edges.values():
        nodes |= targets
    edge_lists = {src: tuple(sorted(targets)) for src, targets in copy_edges.items()}
    comp_of, components = _strongly_connected_components(nodes, edge_lists)

    comp_successors: List[Set[int]] = [set() for _ in components]
    for src, targets in copy_edges.items():
        src_comp = comp_of[src]
        for dst in targets:
            dst_comp = comp_of[dst]
            if dst_comp != src_comp:
                comp_successors[src_comp].add(dst_comp)

    seed_r0 = matrix.column(Access.R0)
    if backend is None:
        backend = bitset.backend_for("closure")
    if backend == bitset.WORDS and bitset.HAVE_WORD_BACKEND:
        comp_value = _sweep_words(seed_r0, components, comp_successors)
    else:
        comp_value = _sweep_ints(seed_r0, components, comp_successors)

    for comp, members in enumerate(components):
        bits = comp_value[comp]
        if bits:
            for label in members:
                matrix.or_bits(label, Access.R0, bits)
    return matrix


def _sweep_ints(
    seed_r0: Dict[int, int],
    components: List[List[int]],
    comp_successors: List[Set[int]],
) -> List[int]:
    """The topological sweep over Python-int bitsets (the ``"int"`` backend)."""
    comp_value: List[int] = [0] * len(components)
    # Tarjan emits components in reverse topological order, so iterating the
    # emission order backwards visits every component before its successors.
    for comp in reversed(range(len(components))):
        bits = comp_value[comp]
        for label in components[comp]:
            bits |= seed_r0.get(label, 0)
        comp_value[comp] = bits
        if bits:
            for successor in comp_successors[comp]:
                comp_value[successor] |= bits
    return comp_value


def _sweep_words(
    seed_r0: Dict[int, int],
    components: List[List[int]],
    comp_successors: List[Set[int]],
) -> List[int]:
    """The same sweep over numpy word rows (the ``"words"`` backend).

    The OR of bitsets never grows past the widest input, so the seed
    column's maximum bit length sizes the whole table up front; rows are
    ORed in place (no per-OR big-int allocation) and unpacked once.
    """
    import numpy as np

    width = max((value.bit_length() for value in seed_r0.values()), default=0)
    words = bitset.words_for(width)
    table = np.zeros((len(components), words), dtype="<u8")
    pack = bitset.pack
    bitwise_or = np.bitwise_or
    for comp in reversed(range(len(components))):
        row = table[comp]
        for label in components[comp]:
            seed = seed_r0.get(label, 0)
            if seed:
                bitwise_or(row, pack(seed, words), out=row)
        if row.any():
            for successor in comp_successors[comp]:
                bitwise_or(table[successor], row, out=table[successor])
    unpack = bitset.unpack
    return [unpack(table[comp]) for comp in range(len(components))]


def propagate_naive(seeds: Seeds, copy_edges: CopyEdges) -> ResourceMatrix:
    """Entry-at-a-time reference fixpoint (the original implementation).

    Kept as the cross-check oracle for :func:`propagate`: every ``R0`` entry
    ``(n, l, R0)`` with a copy edge ``l → l*`` spawns ``(n, l*, R0)``,
    transitively, one deque item per (name, label) pair.  The result interns
    into a private universe — deliberately independent of the seeds' session —
    relying on the name-based cross-universe equality of
    :class:`ResourceMatrix` for comparisons.
    """
    matrix = ResourceMatrix()
    worklist: Deque[Entry] = deque()
    for entry in seeds:
        if matrix.add_entry(entry) and entry.access is Access.R0:
            worklist.append(entry)

    while worklist:
        entry = worklist.popleft()
        for target in copy_edges.get(entry.label, ()):
            new_entry = Entry(entry.name, target, Access.R0)
            if matrix.add_entry(new_entry):
                worklist.append(new_entry)
    return matrix


def global_resource_matrix(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    specialized: SpecializedRD,
) -> ClosureResult:
    """Compute ``RM_gl`` from ``RM_lo`` and the specialised RD results (Table 8)."""
    copy_edges = merge_edges(
        present_value_edges(specialized),
        synchronized_value_edges(program_cfg, specialized),
    )
    rm_global = propagate(rm_lo, copy_edges)
    return ClosureResult(rm_global=rm_global, copy_edges=copy_edges)
