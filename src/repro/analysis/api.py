"""High-level entry points tying the whole pipeline together.

A full analysis run performs, in order:

1. parse and elaborate the VHDL1 source (:mod:`repro.vhdl`);
2. label the processes and build the CFGs and cross-flow relation
   (:mod:`repro.cfg`);
3. run the active-signals Reaching Definitions analysis per process (Table 4)
   and the whole-program Reaching Definitions analysis (Table 5);
4. compute the local Resource Matrix (Table 6) and specialise the RD results
   (Table 7);
5. close the Resource Matrix (Table 8), optionally with the improved rules for
   incoming/outgoing values (Table 9);
6. build the information-flow graph.

:func:`analyze` runs the improved analysis on source text; :func:`analyze_design`
does the same for an already elaborated design; :func:`analyze_kemmerer` runs
the baseline.  All intermediate artefacts are exposed on the returned
:class:`AnalysisResult` so examples, benchmarks and tests can inspect them.

Every run threads one per-session :class:`FactUniverse` of resource names
through the pipeline (local matrix → specialisation → closure → flow graph);
independent calls get independent universes, so a server or batch deployment
analysing many unrelated designs neither shares nor leaks interned names
between runs.  Pass ``universe`` explicitly to pool several runs in one
session (their matrices then compare and combine at the bitset level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.closure import ClosureResult, global_resource_matrix
from repro.analysis.flowgraph import FlowGraph
from repro.analysis.improved import ImprovedClosureResult, improved_global_resource_matrix
from repro.analysis.kemmerer import KemmererResult, kemmerer_analysis
from repro.analysis.local_deps import local_resource_matrix
from repro.analysis.reaching_active import ActiveSignalsResult, analyze_all_active_signals
from repro.analysis.reaching_defs import (
    ReachingDefinitionsResult,
    analyze_reaching_definitions,
)
from repro.analysis.resource_matrix import ResourceMatrix
from repro.analysis.specialize import SpecializedRD, specialize
from repro.cfg.builder import ProgramCFG, build_cfg
from repro.dataflow.universe import FactUniverse
from repro.vhdl.elaborate import Design, elaborate
from repro.vhdl.parser import parse_program


@dataclass
class AnalysisResult:
    """All artefacts produced by one Information Flow analysis run."""

    design: Design
    program_cfg: ProgramCFG
    active: Dict[str, ActiveSignalsResult]
    reaching: ReachingDefinitionsResult
    rm_local: ResourceMatrix
    specialized: SpecializedRD
    rm_global: ResourceMatrix
    graph: FlowGraph
    improved: bool
    outgoing_labels: Dict[str, int] = field(default_factory=dict)
    universe: Optional[FactUniverse] = None
    """The per-session resource-name universe this run interned into."""

    @property
    def flow_graph(self) -> FlowGraph:
        """Alias for :attr:`graph` (the paper's result artefact)."""
        return self.graph

    def graph_without_self_loops(self) -> FlowGraph:
        """The flow graph with trivial ``n → n`` edges removed."""
        return self.graph.without_self_loops()

    def collapsed_graph(self) -> FlowGraph:
        """The flow graph with ``n◦``/``n•`` merged back onto ``n``."""
        return self.graph.collapse_environment_nodes()

    def summary(self) -> str:
        """Short human-readable description of the run."""
        cfg_stats = self.program_cfg.summary()
        return (
            f"design {self.design.name!r}: {cfg_stats['processes']} processes, "
            f"{cfg_stats['labels']} blocks, {len(self.rm_local)} local entries, "
            f"{len(self.rm_global)} global entries, graph: {self.graph.summary()}"
        )


def analyze_design(
    design: Design,
    improved: bool = True,
    loop_processes: bool = True,
    use_under_approximation: bool = True,
    universe: Optional[FactUniverse] = None,
) -> AnalysisResult:
    """Run the full Information Flow analysis on an elaborated design.

    ``improved`` selects the Table 9 extension (incoming/outgoing nodes);
    ``loop_processes=False`` analyses process bodies as straight-line code
    (the paper's presentation of its sequential example programs);
    ``use_under_approximation=False`` ablates the ``RD∩ϕ``-driven kill at
    synchronisation points (Section 4.2), for measuring how much precision the
    under-approximation contributes.  ``universe`` optionally supplies the
    session's resource-name universe; by default every call gets a fresh one.
    """
    if universe is None:
        universe = FactUniverse()
    program_cfg = build_cfg(design, loop_processes=loop_processes)
    active = analyze_all_active_signals(program_cfg.processes)
    reaching = analyze_reaching_definitions(
        program_cfg, active, use_under_approximation=use_under_approximation
    )
    rm_local = local_resource_matrix(program_cfg, universe=universe)
    specialized = specialize(program_cfg, rm_local, active, reaching)

    outgoing_labels: Dict[str, int] = {}
    if improved:
        closure: ImprovedClosureResult = improved_global_resource_matrix(
            program_cfg, rm_local, specialized, design
        )
        outgoing_labels = closure.outgoing_labels
    else:
        closure = global_resource_matrix(program_cfg, rm_local, specialized)

    graph = FlowGraph.from_resource_matrix(closure.rm_global)
    return AnalysisResult(
        design=design,
        program_cfg=program_cfg,
        active=active,
        reaching=reaching,
        rm_local=rm_local,
        specialized=specialized,
        rm_global=closure.rm_global,
        graph=graph,
        improved=improved,
        outgoing_labels=outgoing_labels,
        universe=universe,
    )


def analyze(
    source: str,
    entity_name: Optional[str] = None,
    improved: bool = True,
    loop_processes: bool = True,
    use_under_approximation: bool = True,
    universe: Optional[FactUniverse] = None,
) -> AnalysisResult:
    """Parse, elaborate and analyse VHDL1 source text."""
    design = elaborate(parse_program(source), entity_name)
    return analyze_design(
        design,
        improved=improved,
        loop_processes=loop_processes,
        use_under_approximation=use_under_approximation,
        universe=universe,
    )


def analyze_kemmerer_design(
    design: Design,
    loop_processes: bool = True,
    universe: Optional[FactUniverse] = None,
) -> KemmererResult:
    """Run Kemmerer's baseline on an elaborated design."""
    program_cfg = build_cfg(design, loop_processes=loop_processes)
    return kemmerer_analysis(program_cfg, universe=universe)


def analyze_kemmerer(
    source: str,
    entity_name: Optional[str] = None,
    loop_processes: bool = True,
    universe: Optional[FactUniverse] = None,
) -> KemmererResult:
    """Parse, elaborate and run Kemmerer's baseline on VHDL1 source text."""
    design = elaborate(parse_program(source), entity_name)
    return analyze_kemmerer_design(
        design, loop_processes=loop_processes, universe=universe
    )
