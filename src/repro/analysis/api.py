"""High-level entry points tying the whole pipeline together.

A full analysis run performs, in order:

1. parse and elaborate the VHDL1 source (:mod:`repro.vhdl`);
2. label the processes and build the CFGs and cross-flow relation
   (:mod:`repro.cfg`);
3. run the active-signals Reaching Definitions analysis per process (Table 4)
   and the whole-program Reaching Definitions analysis (Table 5);
4. compute the local Resource Matrix (Table 6) and specialise the RD results
   (Table 7);
5. close the Resource Matrix (Table 8), optionally with the improved rules for
   incoming/outgoing values (Table 9);
6. build the information-flow graph.

:func:`analyze` runs the improved analysis on source text; :func:`analyze_design`
does the same for an already elaborated design; :func:`analyze_kemmerer` runs
the baseline.  All intermediate artefacts are exposed on the returned
:class:`AnalysisResult` so examples, benchmarks and tests can inspect them.

Every run threads one per-session :class:`FactUniverse` of resource names
through the pipeline (local matrix → specialisation → closure → flow graph);
independent calls get independent universes, so a server or batch deployment
analysing many unrelated designs neither shares nor leaks interned names
between runs.  Pass ``universe`` explicitly to pool several runs in one
session (their matrices then compare and combine at the bitset level).

These functions are thin wrappers over :class:`repro.pipeline.Pipeline`,
which exposes the same run as named, individually invokable and timed stages
with a content-addressed artifact cache; use the pipeline directly (or
:func:`repro.pipeline.run_batch`) for servers, batch jobs and anything that
wants stage timings or warm-cache reruns.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.kemmerer import KemmererResult
from repro.dataflow.universe import FactUniverse
from repro.pipeline.artifacts import AnalysisOptions, AnalysisResult
from repro.pipeline.stages import Pipeline
from repro.vhdl.elaborate import Design

__all__ = [
    "AnalysisResult",
    "analyze",
    "analyze_design",
    "analyze_kemmerer",
    "analyze_kemmerer_design",
]


def analyze_design(
    design: Design,
    improved: bool = True,
    loop_processes: bool = True,
    use_under_approximation: bool = True,
    universe: Optional[FactUniverse] = None,
) -> AnalysisResult:
    """Run the full Information Flow analysis on an elaborated design.

    ``improved`` selects the Table 9 extension (incoming/outgoing nodes);
    ``loop_processes=False`` analyses process bodies as straight-line code
    (the paper's presentation of its sequential example programs);
    ``use_under_approximation=False`` ablates the ``RD∩ϕ``-driven kill at
    synchronisation points (Section 4.2), for measuring how much precision the
    under-approximation contributes.  ``universe`` optionally supplies the
    session's resource-name universe; by default every call gets a fresh one.
    """
    options = AnalysisOptions(
        improved=improved,
        loop_processes=loop_processes,
        use_under_approximation=use_under_approximation,
    )
    return Pipeline().run_design(design, options, universe=universe).result


def analyze(
    source: str,
    entity_name: Optional[str] = None,
    improved: bool = True,
    loop_processes: bool = True,
    use_under_approximation: bool = True,
    universe: Optional[FactUniverse] = None,
) -> AnalysisResult:
    """Parse, elaborate and analyse VHDL1 source text."""
    options = AnalysisOptions(
        entity=entity_name,
        improved=improved,
        loop_processes=loop_processes,
        use_under_approximation=use_under_approximation,
    )
    return Pipeline().run(source, options, universe=universe).result


def analyze_kemmerer_design(
    design: Design,
    loop_processes: bool = True,
    universe: Optional[FactUniverse] = None,
) -> KemmererResult:
    """Run Kemmerer's baseline on an elaborated design."""
    options = AnalysisOptions(loop_processes=loop_processes)
    return (
        Pipeline().run_kemmerer_design(design, options, universe=universe).kemmerer
    )


def analyze_kemmerer(
    source: str,
    entity_name: Optional[str] = None,
    loop_processes: bool = True,
    universe: Optional[FactUniverse] = None,
) -> KemmererResult:
    """Parse, elaborate and run Kemmerer's baseline on VHDL1 source text."""
    options = AnalysisOptions(entity=entity_name, loop_processes=loop_processes)
    return Pipeline().run_kemmerer(source, options, universe=universe).kemmerer
