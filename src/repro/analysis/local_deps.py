"""Local dependency analysis: the structural rules of Table 6.

For every process ``i`` the judgement ``B ⊢ ss : RM`` collects the *local*
Resource Matrix entries of its body, where ``B ⊆ Var ∪ Sig`` is the set of
variables and signals the statement's reachability depends on (the guards of
the enclosing ``if``/``while`` statements — the source of implicit flows).

Rules (paraphrased):

* ``[x := e]^l`` modifies ``x`` (``M0``) and reads ``FV(e) ∪ FS(e) ∪ B`` (``R0``);
* ``[s <= e]^l`` modifies the *active* value of ``s`` (``M1``) and reads
  ``FV(e) ∪ FS(e) ∪ B`` (``R0``);
* ``null`` contributes nothing;
* ``if``/``while`` extend ``B`` with the free variables and signals of their
  guard for the analysis of their branches/body (no entries of their own —
  termination and timing channels are out of scope, as in the paper);
* ``[wait on S until e]^l`` records the synchronisation of the active values of
  every signal of the process (``R1`` for ``FS(ss_i)``) and reads
  ``B ∪ S ∪ FV(e) ∪ FS(e)`` (``R0``).

``local_dependencies`` analyses one process (with ``B = ∅`` at the top level,
as in Section 5.2) and ``local_resource_matrix`` unions the per-process
results into ``RM_lo``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Set

from repro.analysis.resource_matrix import Access, ResourceMatrix
from repro.cfg.builder import ProgramCFG
from repro.dataflow.universe import FactUniverse
from repro.vhdl import ast
from repro.vhdl.elaborate import Process


def _expression_reads(expr: ast.Expression) -> Set[str]:
    """``FV(e) ∪ FS(e)`` — every variable or signal read by ``expr``."""
    return set(ast.free_variables_expr(expr)) | set(ast.free_signals_expr(expr))


def _analyze_statements(
    statements: Sequence[ast.Statement],
    block_set: FrozenSet[str],
    process_signals: FrozenSet[str],
    matrix: ResourceMatrix,
) -> None:
    for stmt in statements:
        _analyze_statement(stmt, block_set, process_signals, matrix)


def _analyze_statement(
    stmt: ast.Statement,
    block_set: FrozenSet[str],
    process_signals: FrozenSet[str],
    matrix: ResourceMatrix,
) -> None:
    if stmt.label is None and not isinstance(stmt, (ast.If, ast.While)):
        raise ValueError("statements must be labelled before the dependency analysis")

    if isinstance(stmt, ast.Null):
        return

    if isinstance(stmt, ast.VariableAssign):
        matrix.add(stmt.target, stmt.label, Access.M0)
        for name in _expression_reads(stmt.value) | set(block_set):
            matrix.add(name, stmt.label, Access.R0)
        return

    if isinstance(stmt, ast.SignalAssign):
        matrix.add(stmt.target, stmt.label, Access.M1)
        for name in _expression_reads(stmt.value) | set(block_set):
            matrix.add(name, stmt.label, Access.R0)
        return

    if isinstance(stmt, ast.Wait):
        for signal in process_signals:
            matrix.add(signal, stmt.label, Access.R1)
        reads = set(block_set) | set(stmt.signals)
        if stmt.condition is not None:
            reads |= _expression_reads(stmt.condition)
        for name in reads:
            matrix.add(name, stmt.label, Access.R0)
        return

    if isinstance(stmt, ast.If):
        extended = frozenset(set(block_set) | _expression_reads(stmt.condition))
        _analyze_statements(stmt.then_branch, extended, process_signals, matrix)
        _analyze_statements(stmt.else_branch, extended, process_signals, matrix)
        return

    if isinstance(stmt, ast.While):
        extended = frozenset(set(block_set) | _expression_reads(stmt.condition))
        _analyze_statements(stmt.body, extended, process_signals, matrix)
        return

    raise TypeError(f"unsupported statement {type(stmt).__name__}")


def local_dependencies(
    process: Process,
    block_set: Iterable[str] = (),
    universe: Optional[FactUniverse] = None,
) -> ResourceMatrix:
    """``B ⊢ ss_i : RM_i`` for one process (``B = ∅`` unless overridden)."""
    matrix = ResourceMatrix(universe=universe)
    process_signals = frozenset(process.free_signals())
    _analyze_statements(
        process.body, frozenset(block_set), process_signals, matrix
    )
    return matrix


def local_resource_matrix(
    program_cfg: ProgramCFG, universe: Optional[FactUniverse] = None
) -> ResourceMatrix:
    """``RM_lo = ⋃_i RM_i`` where ``∅ ⊢ ss_i : RM_i`` (Section 5.2).

    All per-process matrices are interned into the same (per-session) name
    universe, so the union is a plain per-label bitwise OR.
    """
    matrix = ResourceMatrix(universe=universe)
    for name in program_cfg.process_order:
        process = program_cfg.processes[name].process
        matrix.update(
            local_dependencies(process, universe=matrix.universe)
        )
    return matrix
