"""``vhdl-ifa lint``: a rule-based static-analysis engine over pipeline
artifacts.

The package splits into three modules:

* :mod:`~repro.analysis.lint.registry` — the :class:`LintRule` base class,
  the :func:`rule` decorator and the stable-code registry;
* :mod:`~repro.analysis.lint.rules` — the built-in IFA101–IFA108 catalog
  (documented in ``docs/lint.md``);
* :mod:`~repro.analysis.lint.engine` — :func:`run_lint_rules` (what the
  cached ``lint`` pipeline stage computes) and :class:`LintConfig` (the
  policy-file ``[lint]`` table: selection + severity overrides, applied
  *after* the cache).
"""

from repro.analysis.lint.engine import (
    FAIL_ON_CHOICES,
    LintConfig,
    findings_fail,
    run_lint_rules,
    severity_counts,
)
from repro.analysis.lint.registry import (
    SEVERITIES,
    STAGE_INPUTS,
    LintRule,
    registered_codes,
    registered_rules,
    rule,
    severity_rank,
)

__all__ = [
    "FAIL_ON_CHOICES",
    "LintConfig",
    "LintRule",
    "SEVERITIES",
    "STAGE_INPUTS",
    "findings_fail",
    "registered_codes",
    "registered_rules",
    "rule",
    "run_lint_rules",
    "severity_counts",
    "severity_rank",
]
