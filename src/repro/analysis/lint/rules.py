"""The built-in lint-rule catalog (``IFA101`` … ``IFA108``).

Every rule here falls out of artefacts the pipeline already computes — the
per-process CFGs, the whole-program Reaching Definitions, and the closed
information-flow graph — so linting a cached design costs one extra (cached)
stage, not a second analysis.  The catalog is documented, with one minimal
reproducer per code, in ``docs/lint.md``; ``scripts/check_docs.py`` fails
when a registered code is missing from that table.

========  =====================================================
code      finding
========  =====================================================
IFA101    signal driven by more than one process (write race)
IFA102    signal written but never read
IFA103    signal read but never written
IFA104    dead process: none of its writes reach an output port
IFA105    incomplete sensitivity list
IFA106    combinational feedback loop (no clocked driver)
IFA107    statement unreachable from the process entry
IFA108    shadowed variable assignment (killed before any use)
========  =====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.analysis.closure import _strongly_connected_components
from repro.analysis.lint.registry import LintRule, rule
from repro.analysis.resource_matrix import outgoing_node
from repro.cfg.builder import ProcessCFG
from repro.cfg.labels import BlockKind
from repro.security.report import Diagnostic
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.artifacts import AnalysisResult


def _expression_reads(process: Process) -> Set[str]:
    """Signals read in the process's expressions (not its wait sensitivity)."""
    reads: Set[str] = set()
    for stmt in ast.iter_statements(process.body):
        if isinstance(stmt, (ast.SignalAssign, ast.VariableAssign)):
            reads |= ast.free_signals_expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            reads |= ast.free_signals_expr(stmt.condition)
        elif isinstance(stmt, ast.Wait):
            reads |= ast.free_signals_expr(stmt.condition)
    return reads


def _wait_sensitivity(process: Process) -> Set[str]:
    """The union of all wait-statement signal sets of the process."""
    sensitivity: Set[str] = set()
    for stmt in ast.iter_statements(process.body):
        if isinstance(stmt, ast.Wait):
            sensitivity |= set(stmt.signals)
    return sensitivity


def _signal_reads(design: Design) -> Set[str]:
    """Every signal observed anywhere: expressions plus wait sensitivity."""
    reads: Set[str] = set()
    for process in design.processes:
        reads |= _expression_reads(process)
        reads |= _wait_sensitivity(process)
    return reads


def _signal_writes(design: Design) -> Set[str]:
    writes: Set[str] = set()
    for process in design.processes:
        writes |= ast.written_signals(process.body)
    return writes


@rule
class MultipleDriversRule(LintRule):
    """Two processes assigning one signal race on every write."""

    code = "IFA101"
    title = "multiple drivers on one signal"
    default_severity = "error"
    requires = ("cfg",)

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        processes = analysis.program_cfg.processes
        for name in sorted(analysis.design.signals):
            drivers = sorted(
                cfg.name
                for cfg in processes.values()
                if cfg.assignment_labels_of_signal(name)
            )
            if len(drivers) < 2:
                continue
            yield self.diagnostic(
                f"signal '{name}' is driven by {len(drivers)} processes "
                f"({', '.join(drivers)}); concurrent writes race",
                source=name,
                target=name,
                path=tuple(drivers),
            )


@rule
class WrittenNeverReadRule(LintRule):
    """A driven signal nobody observes is dead logic."""

    code = "IFA102"
    title = "signal written but never read"
    default_severity = "warning"
    requires = ("cfg",)

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        design = analysis.design
        reads = _signal_reads(design)
        for name in sorted(_signal_writes(design) - reads):
            info = design.signals.get(name)
            if info is None or info.is_output:
                # Output ports are read by the environment by definition.
                continue
            yield self.diagnostic(
                f"signal '{name}' is written but never read by any process",
                source=name,
                target=name,
            )


@rule
class ReadNeverWrittenRule(LintRule):
    """A signal no process drives is stuck at its initial value."""

    code = "IFA103"
    title = "signal read but never written"
    default_severity = "warning"
    requires = ("cfg",)

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        design = analysis.design
        writes = _signal_writes(design)
        for name in sorted(_signal_reads(design) - writes):
            info = design.signals.get(name)
            if info is None or info.is_input:
                # Input ports are driven by the environment by definition.
                continue
            yield self.diagnostic(
                f"signal '{name}' is read but no process ever drives it; "
                "it is stuck at its initial value",
                source=name,
                target=name,
            )


@rule
class DeadProcessRule(LintRule):
    """A process whose writes reach no output port cannot affect the world."""

    code = "IFA104"
    title = "dead process (no write reaches an output port)"
    default_severity = "warning"
    requires = ("cfg", "flow_graph")

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        design = analysis.design
        ports = design.output_ports
        if not ports:
            # Without output ports nothing can be observed; every process
            # would be trivially "dead", which is noise, not a finding.
            return
        graph = analysis.graph
        port_nodes: Set[str] = set(ports)
        port_nodes.update(outgoing_node(port) for port in ports)
        for process in design.processes:
            written = sorted(ast.written_signals(process.body))
            reach: Set[str] = set()
            for signal in written:
                for node in (signal, outgoing_node(signal)):
                    if graph.has_node(node):
                        reach |= graph.reachable_from(node, include_start=True)
            if reach & port_nodes:
                continue
            yield self.diagnostic(
                f"process '{process.name}' writes "
                f"{{{', '.join(written)}}} but none of it reaches an output "
                "port; the process cannot affect the design's outputs"
                if written
                else f"process '{process.name}' writes no signal at all; it "
                "cannot affect the design's outputs",
                source=process.name,
                target=process.name,
                path=tuple(written),
            )


@rule
class SensitivityRule(LintRule):
    """A signal read but absent from every wait set desynchronises the process."""

    code = "IFA105"
    title = "incomplete sensitivity list"
    default_severity = "warning"
    requires = ("cfg",)

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        for process in analysis.design.processes:
            if process.synthesized:
                # Concurrent assignments get their sensitivity synthesised
                # from their own expression; it is complete by construction.
                continue
            sensitivity = _wait_sensitivity(process)
            if not sensitivity:
                # No wait carries a signal set: there is no sensitivity list
                # to be incomplete (e.g. pure `wait until` synchronisation).
                continue
            for name in sorted(_expression_reads(process) - sensitivity):
                yield self.diagnostic(
                    f"process '{process.name}' reads signal '{name}' but no "
                    "wait statement is sensitive to it; the process will not "
                    "re-run when the signal changes",
                    source=process.name,
                    target=name,
                )


@rule
class CombinationalLoopRule(LintRule):
    """A signal cycle with no clocked driver oscillates combinationally."""

    code = "IFA106"
    title = "combinational feedback loop"
    default_severity = "error"
    requires = ("cfg", "flow_graph")

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        design = analysis.design
        graph = analysis.graph.collapse_environment_nodes().without_self_loops()
        signal_nodes = sorted(
            node for node in graph.nodes if node in design.signals
        )
        subgraph = graph.restricted_to(signal_nodes)
        adjacency = subgraph.to_adjacency()
        edges = {
            node: tuple(successors) for node, successors in adjacency.items()
        }
        _, components = _strongly_connected_components(adjacency, edges)
        processes = analysis.program_cfg.processes
        for component in components:
            if len(component) < 2:
                continue
            members = sorted(component)
            member_set = set(members)
            drivers = sorted(
                cfg.name
                for cfg in processes.values()
                if any(cfg.assignment_labels_of_signal(s) for s in members)
            )
            if any(
                self._is_clocked(processes[name], member_set)
                for name in drivers
            ):
                continue
            yield self.diagnostic(
                "combinational feedback loop through signals "
                f"{{{', '.join(members)}}} (driven by {', '.join(drivers)}); "
                "no driver is gated by a clock outside the loop",
                source=members[0],
                target=members[0],
                path=tuple(members),
            )

    @staticmethod
    def _is_clocked(cfg: ProcessCFG, loop_signals: Set[str]) -> bool:
        """True when the process only wakes on signals outside the loop."""
        sensitivity = _wait_sensitivity(cfg.process)
        return bool(sensitivity) and sensitivity.isdisjoint(loop_signals)


@rule
class UnreachableStatementRule(LintRule):
    """A CFG node with no path from the process entry never executes."""

    code = "IFA107"
    title = "unreachable statement"
    default_severity = "warning"
    requires = ("cfg",)

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        for name in sorted(analysis.program_cfg.processes):
            cfg = analysis.program_cfg.processes[name]
            for label in sorted(cfg.body_labels - self._reachable(cfg)):
                kind = cfg.blocks[label].kind.name.lower()
                yield self.diagnostic(
                    f"statement at label {label} ({kind}) in process "
                    f"'{name}' is unreachable from the process entry",
                    source=name,
                    target=f"L{label}",
                )

    @staticmethod
    def _reachable(cfg: ProcessCFG) -> FrozenSet[int]:
        successors: Dict[int, List[int]] = {}
        for src, dst in cfg.flow:
            successors.setdefault(src, []).append(dst)
        seen: Set[int] = {cfg.entry_label}
        stack: List[int] = [cfg.entry_label]
        while stack:
            for succ in successors.get(stack.pop(), ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return frozenset(seen)


@rule
class ShadowedAssignmentRule(LintRule):
    """A variable definition killed before any use has no effect."""

    code = "IFA108"
    title = "shadowed variable assignment"
    default_severity = "info"
    requires = ("cfg", "reaching")

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        reaching = analysis.reaching
        for name in sorted(analysis.program_cfg.processes):
            cfg = analysis.program_cfg.processes[name]
            read_labels = self._variable_read_labels(cfg)
            for label in sorted(cfg.body_labels):
                block = cfg.blocks[label]
                if block.kind is not BlockKind.VARIABLE_ASSIGN:
                    continue
                variable = block.statement.target
                used = any(
                    (variable, label) in reaching.entry_of(read_label)
                    for read_label in sorted(read_labels.get(variable, ()))
                )
                if used:
                    continue
                yield self.diagnostic(
                    f"assignment to variable '{variable}' at label {label} "
                    f"in process '{name}' is shadowed: the definition never "
                    "reaches a use (killed by a later assignment, or the "
                    "variable is never read)",
                    source=name,
                    target=variable,
                    path=(f"L{label}",),
                )

    @staticmethod
    def _variable_read_labels(cfg: ProcessCFG) -> Dict[str, Set[int]]:
        """Variable name → the labels whose statement reads it."""
        reads_at: Dict[str, Set[int]] = {}
        for label, block in cfg.blocks.items():
            stmt = block.statement
            if block.kind in (BlockKind.VARIABLE_ASSIGN, BlockKind.SIGNAL_ASSIGN):
                reads = ast.free_variables_expr(stmt.value)
            elif block.kind in (BlockKind.IF_GUARD, BlockKind.WHILE_GUARD):
                reads = ast.free_variables_expr(stmt.condition)
            elif block.kind is BlockKind.WAIT:
                reads = ast.free_variables_expr(stmt.condition)
            else:
                reads = set()
            for variable in reads:
                reads_at.setdefault(variable, set()).add(label)
        return reads_at
