"""The lint-rule registry: stable codes, declared inputs, one class per rule.

A lint rule is a small class deriving from :class:`LintRule`: it declares a
stable diagnostic ``code`` (``IFA1xx``; the policy-check codes ``IFA001``/
``IFA002`` live in :mod:`repro.security.report` and share the namespace), a
``title``, a ``default_severity``, and — as data, so tooling can reason about
it — the pipeline stages whose artefacts it consumes (``requires``, a subset
of :data:`STAGE_INPUTS`).  Rules emit plain
:class:`~repro.security.report.Diagnostic` records, the same structured type
the policy checker uses, so every downstream surface (CLI ``--json``, batch
sections, ``POST /lint``) renders findings with one shared shape.

Registration happens once at import time via the :func:`rule` decorator;
registering two rules under one code is a programming error and raises
immediately (the repo-invariant lint in ``scripts/check_invariants.py``
additionally enforces this statically over the source tree).
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type

from repro.errors import AnalysisError
from repro.security.report import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.artifacts import AnalysisResult

#: The pipeline-stage artefacts a rule may declare in ``requires``.
STAGE_INPUTS = ("cfg", "reaching", "local", "closure", "flow_graph")

#: The severities a rule (or a policy override) may assign.
SEVERITIES = ("info", "warning", "error")

#: Stable lint codes follow the policy-check codes' format.
_CODE_FORMAT = re.compile(r"^IFA[0-9]{3}$")


def severity_rank(severity: str) -> int:
    """The ordering of :data:`SEVERITIES` (``error`` ranks highest)."""
    return SEVERITIES.index(severity)


class LintRule:
    """One registered static-analysis rule over pipeline artefacts.

    Subclasses set the class attributes and implement :meth:`check`, which
    receives a finished :class:`~repro.pipeline.artifacts.AnalysisResult`
    and yields :class:`Diagnostic` records.  ``requires`` documents which
    stage artefacts the rule reads (a subset of :data:`STAGE_INPUTS`) — the
    engine runs after the full analysis, so every artefact is available; the
    declaration exists for the rule catalog and for tooling.
    """

    code: str = ""
    title: str = ""
    default_severity: str = "warning"
    requires: Tuple[str, ...] = ()

    def check(self, analysis: "AnalysisResult") -> Iterator[Diagnostic]:
        """Yield this rule's findings for one analysed design."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator

    def diagnostic(
        self,
        message: str,
        *,
        source: str = "",
        target: str = "",
        path: Tuple[str, ...] = (),
    ) -> Diagnostic:
        """A :class:`Diagnostic` carrying this rule's code and severity.

        Lint findings have no clearance levels, so ``source_level`` and
        ``target_level`` are empty strings (the shared schema keeps them
        required for one uniform diagnostic shape).
        """
        return Diagnostic(
            code=self.code,
            severity=self.default_severity,
            message=message,
            source=source,
            target=target,
            source_level="",
            target_level="",
            path=path,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator registering a :class:`LintRule` under its code."""
    code = cls.code
    if not _CODE_FORMAT.match(code):
        raise AnalysisError(
            f"lint rule {cls.__name__} declares malformed code {code!r}; "
            "expected the stable IFAnnn format"
        )
    if not cls.title:
        raise AnalysisError(f"lint rule {code} ({cls.__name__}) declares no title")
    if cls.default_severity not in SEVERITIES:
        raise AnalysisError(
            f"lint rule {code} declares severity {cls.default_severity!r}; "
            "expected one of " + ", ".join(SEVERITIES)
        )
    unknown = [stage for stage in cls.requires if stage not in STAGE_INPUTS]
    if unknown:
        raise AnalysisError(
            f"lint rule {code} requires unknown stage artefact(s) "
            + ", ".join(repr(stage) for stage in unknown)
            + "; expected a subset of " + ", ".join(STAGE_INPUTS)
        )
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not cls:
        raise AnalysisError(
            f"lint code {code} is already registered by {existing.__name__}; "
            "codes are stable and must be registered exactly once"
        )
    _REGISTRY[code] = cls
    return cls


def registered_rules() -> Dict[str, Type[LintRule]]:
    """Code → rule class for every registered rule (a copy)."""
    _ensure_catalog()
    return dict(_REGISTRY)


def registered_codes() -> List[str]:
    """The registered lint codes, sorted."""
    _ensure_catalog()
    return sorted(_REGISTRY)


def _ensure_catalog() -> None:
    # The built-in catalog registers itself on import; importing it here
    # keeps `registered_codes()` complete for callers that never touched
    # repro.analysis.lint.rules directly (e.g. the docs gate).
    import repro.analysis.lint.rules  # noqa: F401
