"""The lint engine: run the registered catalog, select, override, order.

The split between :func:`run_lint_rules` and :class:`LintConfig` mirrors the
cache design: the pipeline's ``lint`` stage caches the *complete* finding
tuple (every registered rule, default severities, deterministically sorted),
so a cached artefact stays valid whatever ``[lint]`` policy table the caller
brings; rule selection and severity overrides are applied afterwards, outside
the content-addressed stage, by :meth:`LintConfig.apply`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Sequence, Tuple

from repro.analysis.lint.registry import (
    SEVERITIES,
    registered_rules,
    severity_rank,
)
from repro.errors import PolicyError
from repro.security.report import Diagnostic, diagnostic_sort_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.artifacts import AnalysisResult

#: The ``--fail-on`` vocabulary shared by ``lint``, ``check`` and ``batch``.
FAIL_ON_CHOICES = ("error", "warning", "never")


def run_lint_rules(analysis: "AnalysisResult") -> Tuple[Diagnostic, ...]:
    """Every registered rule's findings for one design, sorted and frozen.

    This is what the pipeline's ``lint`` stage caches: the full catalog at
    default severities, ordered by :func:`diagnostic_sort_key` so the bytes
    are stable across runs, platforms and pool workers.
    """
    findings: List[Diagnostic] = []
    for code in sorted(registered_rules()):
        findings.extend(registered_rules()[code]().check(analysis))
    return tuple(sorted(findings, key=diagnostic_sort_key))


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and severity overrides (a policy file's ``[lint]``).

    ``enable`` non-empty acts as an allowlist; ``disable`` always wins over
    ``enable``; ``severity`` re-grades individual codes.  The object is a
    frozen, picklable value so batch pool workers can carry it in their
    payload tuples.
    """

    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    severity: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], context: str = "[lint]") -> "LintConfig":
        """Validate and freeze a parsed ``[lint]`` table.

        Raises :class:`PolicyError` on unknown keys, non-list selections,
        unregistered codes, or severities outside the shared vocabulary.
        """
        from repro.analysis.lint.registry import registered_codes

        known = set(registered_codes())
        unknown_keys = sorted(set(data) - {"enable", "disable", "severity"})
        if unknown_keys:
            raise PolicyError(
                f"{context} has unknown key(s) "
                + ", ".join(repr(key) for key in unknown_keys)
                + "; expected enable, disable, severity"
            )
        selections: Dict[str, Tuple[str, ...]] = {}
        for key in ("enable", "disable"):
            raw = data.get(key, ())
            if not isinstance(raw, (list, tuple)) or not all(
                isinstance(code, str) for code in raw
            ):
                raise PolicyError(f"{context}.{key} must be a list of lint codes")
            for code in raw:
                if code not in known:
                    raise PolicyError(
                        f"{context}.{key} names unknown lint code {code!r} "
                        "(registered: " + ", ".join(sorted(known)) + ")"
                    )
            selections[key] = tuple(raw)
        raw_severity = data.get("severity", {})
        if not isinstance(raw_severity, Mapping):
            raise PolicyError(
                f"{context}.severity must be a table of code = severity pairs"
            )
        overrides: List[Tuple[str, str]] = []
        for code in sorted(raw_severity):
            level = raw_severity[code]
            if code not in known:
                raise PolicyError(
                    f"{context}.severity names unknown lint code {code!r}"
                )
            if level not in SEVERITIES:
                raise PolicyError(
                    f"{context}.severity.{code} is {level!r}; expected one of "
                    + ", ".join(SEVERITIES)
                )
            overrides.append((code, level))
        return cls(
            enable=selections["enable"],
            disable=selections["disable"],
            severity=tuple(overrides),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The ``[lint]`` table this config round-trips to (sparse)."""
        document: Dict[str, Any] = {}
        if self.enable:
            document["enable"] = list(self.enable)
        if self.disable:
            document["disable"] = list(self.disable)
        if self.severity:
            document["severity"] = {code: level for code, level in self.severity}
        return document

    def allows(self, code: str) -> bool:
        """Whether findings with ``code`` survive this selection."""
        if self.enable and code not in self.enable:
            return False
        return code not in self.disable

    def apply(self, findings: Sequence[Diagnostic]) -> List[Diagnostic]:
        """Filter and re-grade cached findings; order is preserved sorted."""
        overrides = dict(self.severity)
        selected: List[Diagnostic] = []
        for finding in findings:
            if not self.allows(finding.code):
                continue
            override = overrides.get(finding.code)
            if override is not None and override != finding.severity:
                finding = replace(finding, severity=override)
            selected.append(finding)
        return sorted(selected, key=diagnostic_sort_key)


def severity_counts(findings: Sequence[Diagnostic]) -> Dict[str, int]:
    """The lint summary block: total plus one counter per severity."""
    counts = {"findings": len(findings), "errors": 0, "warnings": 0, "infos": 0}
    for finding in findings:
        counts[finding.severity + "s"] += 1
    return counts


def findings_fail(findings: Sequence[Diagnostic], fail_on: str) -> bool:
    """The shared severity → exit-code gate behind ``--fail-on``."""
    if fail_on not in FAIL_ON_CHOICES:
        raise PolicyError(
            f"unknown --fail-on value {fail_on!r}; expected one of "
            + ", ".join(FAIL_ON_CHOICES)
        )
    if fail_on == "never":
        return False
    threshold = severity_rank(fail_on)
    return any(severity_rank(f.severity) >= threshold for f in findings)
