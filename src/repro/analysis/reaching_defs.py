"""Reaching Definitions for local variables and *present* signal values (Table 5).

This analysis is an over-approximation, runs on the whole program at once
(all processes share the lattice ``P((Var ∪ Sig) × Lab)``) and consumes the
per-process active-signals results of Table 4:

* an assignment ``[x := e]^l`` kills every other definition of ``x`` in the
  same process (including the initial-value marker ``?``) and generates
  ``(x, l)``;
* a ``wait`` statement is where signals obtain new *present* values, so it
  generates ``(s, l)`` for every signal ``s`` that **may** be active at any
  synchronisation point it could synchronise with (the ``RD∪ϕ``
  over-approximation), and kills the previous definitions of every signal that
  **must** be active at all of them (the ``RD∩ϕ`` under-approximation combined
  with the dotted intersection over the cross-flow relation ``cf``);
* the initial value of every variable and signal of a process is recorded as
  the special definition label ``?`` (:data:`INITIAL_LABEL`) at the process
  entry.

The cross-flow combinators are implemented twice: a literal product-based form
(:func:`killed_signals_at_wait_naive` / :func:`generated_signals_at_wait_naive`)
that follows Table 5 word for word, and an equivalent factorised form used by
default that avoids materialising the Cartesian product ``cf``.  The test
suite checks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set, Tuple

from repro.cfg.builder import ProcessCFG, ProgramCFG
from repro.cfg.labels import Block, BlockKind
from repro.dataflow.framework import DataflowInstance, JoinMode
from repro.dataflow.worklist import solve
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.vhdl import ast

#: The special label ``?`` of the paper: "the initial value might be the one
#: defining a signal (or variable) at present time".
INITIAL_LABEL: int = -1

ResourceDef = Tuple[str, int]
"""A pair ``(resource, label)``: resource defined at ``label`` (or ``?``)."""


@dataclass
class ReachingDefinitionsResult:
    """The whole-program least solution ``RDcf_entry`` / ``RDcf_exit``."""

    entry: Dict[int, FrozenSet[ResourceDef]]
    exit: Dict[int, FrozenSet[ResourceDef]]

    def entry_of(self, label: int) -> FrozenSet[ResourceDef]:
        """``RDcf_entry(l)``."""
        return self.entry.get(label, frozenset())

    def exit_of(self, label: int) -> FrozenSet[ResourceDef]:
        """``RDcf_exit(l)``."""
        return self.exit.get(label, frozenset())

    def definitions_of(self, name: str, label: int) -> FrozenSet[int]:
        """Labels at which ``name``'s reaching definitions at ``label`` were made."""
        return frozenset(l for (n, l) in self.entry_of(label) if n == name)


# ---------------------------------------------------------------------------
# Cross-flow combinators
# ---------------------------------------------------------------------------


def killed_signals_at_wait(
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    wait_label: int,
) -> FrozenSet[str]:
    """Signals guaranteed to receive a new present value at ``wait_label``.

    Table 5's ``⋂˙_{(l1..ln) ∈ cf, li=l} ⋃_j fst(RD∩ϕ_entry(lj))`` computed in
    factorised form: a signal is in the intersection over all cross-flow tuples
    exactly when it *must* be active either at ``wait_label`` itself or at
    **every** wait label of some other process.  When some other process has no
    wait statement the cross-flow relation is empty and the dotted intersection
    yields ``∅``.
    """
    owner = program_cfg.process_of_label(wait_label)
    others = [name for name in program_cfg.process_order if name != owner]
    if any(not program_cfg.processes[name].wait_labels for name in others):
        return frozenset()
    result: Set[str] = set(active[owner].must_be_active_at(wait_label))
    for name in others:
        waits = sorted(program_cfg.processes[name].wait_labels)
        common: Set[str] = set(active[name].must_be_active_at(waits[0]))
        for other_wait in waits[1:]:
            common &= active[name].must_be_active_at(other_wait)
        result |= common
    return frozenset(result)


def killed_signals_at_wait_naive(
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    wait_label: int,
) -> FrozenSet[str]:
    """Literal Table 5 form of :func:`killed_signals_at_wait` (materialises ``cf``)."""
    tuples = program_cfg.cross_flow_tuples_containing(wait_label)
    if not tuples:
        return frozenset()
    order = program_cfg.process_order
    collected = []
    for combo in tuples:
        union: Set[str] = set()
        for process_name, label in zip(order, combo):
            union |= active[process_name].must_be_active_at(label)
        collected.append(union)
    result = set(collected[0])
    for union in collected[1:]:
        result &= union
    return frozenset(result)


def generated_signals_at_wait(
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    wait_label: int,
) -> FrozenSet[str]:
    """Signals that *may* receive a new present value at ``wait_label``.

    Table 5's ``⋃_{(l1..ln) ∈ cf, li=l} ⋃_j fst(RD∪ϕ_entry(lj))`` in factorised
    form: the may-active signals at ``wait_label`` itself plus the may-active
    signals at any wait label of any other process — provided the cross-flow
    relation is non-empty.
    """
    owner = program_cfg.process_of_label(wait_label)
    others = [name for name in program_cfg.process_order if name != owner]
    if any(not program_cfg.processes[name].wait_labels for name in others):
        return frozenset()
    result: Set[str] = set(active[owner].may_be_active_at(wait_label))
    for name in others:
        for other_wait in program_cfg.processes[name].wait_labels:
            result |= active[name].may_be_active_at(other_wait)
    return frozenset(result)


def generated_signals_at_wait_naive(
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    wait_label: int,
) -> FrozenSet[str]:
    """Literal Table 5 form of :func:`generated_signals_at_wait`."""
    tuples = program_cfg.cross_flow_tuples_containing(wait_label)
    order = program_cfg.process_order
    result: Set[str] = set()
    for combo in tuples:
        for process_name, label in zip(order, combo):
            result |= active[process_name].may_be_active_at(label)
    return frozenset(result)


# ---------------------------------------------------------------------------
# kill / gen (Table 5)
# ---------------------------------------------------------------------------


def kill_rd(
    block: Block,
    cfg: ProcessCFG,
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    use_under_approximation: bool = True,
) -> FrozenSet[ResourceDef]:
    """``kill^{cf}_RD`` of Table 5.

    Variable assignments kill the initial-value marker and every other
    definition of the same variable in the same process.  Wait statements kill
    the previous present-value definitions of every signal guaranteed to be
    synchronised here; those definitions can only have been made at a wait
    label of the same process or be the initial value ``?``, so the kill set is
    restricted to those labels.

    ``use_under_approximation=False`` disables the wait-statement kill entirely
    (as if ``RD∩ϕ`` were trivially empty) — the ablation of the paper's
    "unusual ingredient", used by ``benchmarks/bench_ablation.py`` to measure
    how much precision the under-approximation buys.
    """
    if block.kind is BlockKind.VARIABLE_ASSIGN:
        variable = block.statement.target
        killed: Set[ResourceDef] = {(variable, INITIAL_LABEL)}
        for label in cfg.assignment_labels_of_variable(variable):
            killed.add((variable, label))
        return frozenset(killed)
    if block.kind is BlockKind.WAIT:
        if not use_under_approximation:
            return frozenset()
        signals = killed_signals_at_wait(program_cfg, active, block.label)
        definition_points = set(cfg.wait_labels) | {INITIAL_LABEL}
        return frozenset(
            (signal, label) for signal in signals for label in definition_points
        )
    return frozenset()


def gen_rd(
    block: Block,
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
) -> FrozenSet[ResourceDef]:
    """``gen^{cf}_RD`` of Table 5.

    Variable assignments generate ``(x, l)``; wait statements generate
    ``(s, l)`` for every signal that may be active at any synchronisation
    partner.
    """
    if block.kind is BlockKind.VARIABLE_ASSIGN:
        return frozenset({(block.statement.target, block.label)})
    if block.kind is BlockKind.WAIT:
        signals = generated_signals_at_wait(program_cfg, active, block.label)
        return frozenset((signal, block.label) for signal in signals)
    return frozenset()


# ---------------------------------------------------------------------------
# Analysis driver
# ---------------------------------------------------------------------------


def initial_definitions(cfg: ProcessCFG) -> FrozenSet[ResourceDef]:
    """The extremal value at a process entry.

    ``{(x, ?) | x ∈ FV(ss_i)} ∪ {(s, ?) | s ∈ FS(ss_i)}`` — every variable and
    signal the process mentions starts out defined by its initial value.
    """
    resources = set(cfg.process.free_variables()) | set(cfg.process.free_signals())
    return frozenset((name, INITIAL_LABEL) for name in resources)


def analyze_reaching_definitions(
    program_cfg: ProgramCFG,
    active: Dict[str, ActiveSignalsResult],
    use_under_approximation: bool = True,
) -> ReachingDefinitionsResult:
    """Run Table 5 on the whole program and return the least solution.

    ``use_under_approximation=False`` runs the ablated variant in which wait
    statements kill nothing (see :func:`kill_rd`).
    """
    labels: Set[int] = set()
    flow: Set[Tuple[int, int]] = set()
    extremal_labels: Set[int] = set()
    extremal_value: Dict[int, FrozenSet[ResourceDef]] = {}
    kill: Dict[int, FrozenSet[ResourceDef]] = {}
    gen: Dict[int, FrozenSet[ResourceDef]] = {}

    for name in program_cfg.process_order:
        cfg = program_cfg.processes[name]
        labels |= set(cfg.blocks)
        flow |= cfg.flow
        extremal_labels.add(cfg.entry_label)
        extremal_value[cfg.entry_label] = initial_definitions(cfg)
        for label, block in cfg.blocks.items():
            kill[label] = kill_rd(
                block, cfg, program_cfg, active, use_under_approximation
            )
            gen[label] = gen_rd(block, program_cfg, active)

    instance = DataflowInstance(
        labels=frozenset(labels),
        flow=frozenset(flow),
        extremal_labels=frozenset(extremal_labels),
        extremal_value=extremal_value,
        kill=kill,
        gen=gen,
        join_mode=JoinMode.UNION,
    )
    solution = solve(instance)
    return ReachingDefinitionsResult(entry=dict(solution.entry), exit=dict(solution.exit))
