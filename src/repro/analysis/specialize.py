"""Specialisation of the Reaching Definitions results (Table 7).

Before the closure is performed, the RD results are restricted to definitions
that are *actually used* at the labelled construct, by consulting the local
Resource Matrix ``RM_lo``:

* ``RD†ϕ(l_i)`` — for a wait label ``l_i`` whose synchronisation reads the
  active value of ``s`` (``(s, l_i, R1) ∈ RM_lo``), the definitions
  ``(s, l) ∈ RD∪ϕ_entry(l_i)`` are kept, provided ``l_i`` occurs in some
  cross-flow tuple (the signal might in fact be synchronised);
* ``RD†(l')`` — for a label ``l'`` that reads the present value of ``n``
  (``(n, l', R0) ∈ RM_lo``), the definitions ``(n, l) ∈ RDcf_entry(l')`` are
  kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.local_deps import ResourceMatrix
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.analysis.reaching_defs import ReachingDefinitionsResult
from repro.analysis.resource_matrix import Access
from repro.cfg.builder import ProgramCFG

ResourceDef = Tuple[str, int]


@dataclass
class SpecializedRD:
    """The specialised relations ``RD†`` and ``RD†ϕ`` indexed by label."""

    present: Dict[int, FrozenSet[ResourceDef]] = field(default_factory=dict)
    active: Dict[int, FrozenSet[ResourceDef]] = field(default_factory=dict)

    def present_at(self, label: int) -> FrozenSet[ResourceDef]:
        """``RD†(l)``: used definitions of present values / variables at ``l``."""
        return self.present.get(label, frozenset())

    def active_at(self, label: int) -> FrozenSet[ResourceDef]:
        """``RD†ϕ(l)``: used definitions of active signal values at wait ``l``."""
        return self.active.get(label, frozenset())


def specialize(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    active: Dict[str, ActiveSignalsResult],
    reaching: ReachingDefinitionsResult,
) -> SpecializedRD:
    """Apply both rules of Table 7 and return ``RD†`` / ``RD†ϕ``."""
    result = SpecializedRD()

    # [RD for active signals]
    active_defs: Dict[int, Set[ResourceDef]] = {}
    for entry in rm_lo.with_access(Access.R1):
        wait_label = entry.label
        if not program_cfg.label_occurs_in_cross_flow(wait_label):
            continue
        owner = program_cfg.process_of_label(wait_label)
        over_entry = active[owner].over_entry_of(wait_label)
        used = {(s, l) for (s, l) in over_entry if s == entry.name}
        if used:
            active_defs.setdefault(wait_label, set()).update(used)
    result.active = {label: frozenset(defs) for label, defs in active_defs.items()}

    # [RD for present signals and local variables]
    present_defs: Dict[int, Set[ResourceDef]] = {}
    for entry in rm_lo.with_access(Access.R0):
        label = entry.label
        rd_entry = reaching.entry_of(label)
        used = {(n, l) for (n, l) in rd_entry if n == entry.name}
        if used:
            present_defs.setdefault(label, set()).update(used)
    result.present = {label: frozenset(defs) for label, defs in present_defs.items()}

    return result
