"""Specialisation of the Reaching Definitions results (Table 7).

Before the closure is performed, the RD results are restricted to definitions
that are *actually used* at the labelled construct, by consulting the local
Resource Matrix ``RM_lo``:

* ``RD†ϕ(l_i)`` — for a wait label ``l_i`` whose synchronisation reads the
  active value of ``s`` (``(s, l_i, R1) ∈ RM_lo``), the definitions
  ``(s, l) ∈ RD∪ϕ_entry(l_i)`` are kept, provided ``l_i`` occurs in some
  cross-flow tuple (the signal might in fact be synchronised);
* ``RD†(l')`` — for a label ``l'`` that reads the present value of ``n``
  (``(n, l', R0) ∈ RM_lo``), the definitions ``(n, l) ∈ RDcf_entry(l')`` are
  kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.local_deps import ResourceMatrix
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.analysis.reaching_defs import ReachingDefinitionsResult
from repro.analysis.resource_matrix import Access
from repro.cfg.builder import ProgramCFG

ResourceDef = Tuple[str, int]


@dataclass
class SpecializedRD:
    """The specialised relations ``RD†`` and ``RD†ϕ`` indexed by label."""

    present: Dict[int, FrozenSet[ResourceDef]] = field(default_factory=dict)
    active: Dict[int, FrozenSet[ResourceDef]] = field(default_factory=dict)

    def present_at(self, label: int) -> FrozenSet[ResourceDef]:
        """``RD†(l)``: used definitions of present values / variables at ``l``."""
        return self.present.get(label, frozenset())

    def active_at(self, label: int) -> FrozenSet[ResourceDef]:
        """``RD†ϕ(l)``: used definitions of active signal values at wait ``l``."""
        return self.active.get(label, frozenset())


def specialize(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    active: Dict[str, ActiveSignalsResult],
    reaching: ReachingDefinitionsResult,
) -> SpecializedRD:
    """Apply both rules of Table 7 and return ``RD†`` / ``RD†ϕ``."""
    result = SpecializedRD()
    decode_names = rm_lo.universe.decode

    # [RD for active signals] — one pass over RD∪ϕ_entry per wait label that
    # carries R1 reads, filtering against the label's read-name set.
    active_defs: Dict[int, FrozenSet[ResourceDef]] = {}
    for wait_label, bits in sorted(rm_lo.column(Access.R1).items()):
        if not program_cfg.label_occurs_in_cross_flow(wait_label):
            continue
        read_names = decode_names(bits)
        owner = program_cfg.process_of_label(wait_label)
        over_entry = active[owner].over_entry_of(wait_label)
        used = frozenset((s, l) for (s, l) in over_entry if s in read_names)
        if used:
            active_defs[wait_label] = used
    result.active = active_defs

    # [RD for present signals and local variables] — likewise one pass over
    # RDcf_entry per label with R0 reads.
    present_defs: Dict[int, FrozenSet[ResourceDef]] = {}
    for label, bits in sorted(rm_lo.column(Access.R0).items()):
        read_names = decode_names(bits)
        rd_entry = reaching.entry_of(label)
        used = frozenset((n, l) for (n, l) in rd_entry if n in read_names)
        if used:
            present_defs[label] = used
    result.present = present_defs

    return result
