"""The improved Information Flow analysis with incoming/outgoing nodes (Table 9).

Section 5.3 refines the analysis so that the *initial* and *environment* values
of resources are distinguished from the values computed by the program:

* every resource read before it is (re)defined contributes its **incoming**
  node ``n◦``;
* every ``out`` port contributes an **outgoing** node ``n•`` capturing what
  leaves the design at synchronisation points.

The paper models the environment as an extra process ``π`` that drives the
incoming signals just before every synchronisation point and samples the
outgoing signals just after it.  The four rules of Table 9 are implemented on
top of the Table 8 closure machinery:

* **[Initial values]** — ``(n, ?) ∈ RD†(l)`` seeds ``(n◦, l, R0)``;
* **[Incoming values]** — ``(n, l') ∈ RD†(l)`` with ``l'`` a wait label seeds
  ``(n◦, l, R0)``; we restrict ``n`` to the design's incoming signals (``in``
  ports), since only those are driven by the environment process ``π``;
* **[Outgoing values]** — every ``out`` port ``n`` receives a dedicated label
  ``l_{n•}`` at which ``(n•, l_{n•}, M1)`` holds;
* **[Outcoming values]** — for every wait label ``l`` and active definition
  ``(n, l') ∈ RD†ϕ(l)`` of an ``out`` port ``n``, the reads of the assignment
  at ``l'`` are copied to ``l_{n•}`` (a copy edge ``l' → l_{n•}``).

The seeds and extra copy edges are fed into the same propagation fixpoint as
Table 8, so all rules reach a joint fixpoint.  The seed matrix is a copy of
``RM_lo`` and therefore interns the ``n◦``/``n•`` node names into the same
per-session universe the rest of the pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.closure import (
    CopyEdges,
    merge_edges,
    present_value_edges,
    propagate,
    synchronized_value_edges,
)
from repro.analysis.reaching_defs import INITIAL_LABEL
from repro.analysis.resource_matrix import (
    Access,
    Entry,
    ResourceMatrix,
    incoming_node,
    outgoing_node,
)
from repro.analysis.specialize import SpecializedRD
from repro.cfg.builder import ProgramCFG
from repro.vhdl.elaborate import Design


@dataclass
class ImprovedClosureResult:
    """``RM_gl`` of the improved analysis plus the synthetic outgoing labels."""

    rm_global: ResourceMatrix
    copy_edges: CopyEdges = field(default_factory=dict)
    outgoing_labels: Dict[str, int] = field(default_factory=dict)
    """Maps each ``out`` port to its synthetic label ``l_{n•}``."""

    def __iter__(self):
        return iter(self.rm_global)


def allocate_outgoing_labels(program_cfg: ProgramCFG, design: Design) -> Dict[str, int]:
    """Assign a fresh label ``l_{n•}`` to every outgoing signal.

    The labels are placed after every program label so they cannot collide with
    the labelling of the processes.
    """
    next_label = max(program_cfg.labels, default=0) + 1
    labels: Dict[str, int] = {}
    for name in design.output_ports:
        labels[name] = next_label
        next_label += 1
    return labels


def initial_value_seeds(specialized: SpecializedRD) -> List[Entry]:
    """Rule [Initial values]: ``(n, ?) ∈ RD†(l)`` gives ``(n◦, l, R0)``."""
    seeds: List[Entry] = []
    for label, definitions in specialized.present.items():
        for name, def_label in definitions:
            if def_label == INITIAL_LABEL:
                seeds.append(Entry(incoming_node(name), label, Access.R0))
    return seeds


def incoming_value_seeds(
    program_cfg: ProgramCFG, specialized: SpecializedRD, design: Design
) -> List[Entry]:
    """Rule [Incoming values]: environment-driven definitions at wait labels.

    ``(n, l') ∈ RD†(l)`` with ``l' ∈ WS`` gives ``(n◦, l, R0)``; ``n`` is
    restricted to the design's ``in`` ports because only those are assigned by
    the environment process ``π``.
    """
    incoming = set(design.input_ports)
    wait_labels = program_cfg.wait_labels
    seeds: List[Entry] = []
    for label, definitions in specialized.present.items():
        for name, def_label in definitions:
            if def_label in wait_labels and name in incoming:
                seeds.append(Entry(incoming_node(name), label, Access.R0))
    return seeds


def outgoing_value_seeds(outgoing_labels: Dict[str, int]) -> List[Entry]:
    """Rule [Outgoing values]: ``(n•, l_{n•}, M1)`` for every ``out`` port."""
    return [
        Entry(outgoing_node(name), label, Access.M1)
        for name, label in outgoing_labels.items()
    ]


def outcoming_value_edges(
    program_cfg: ProgramCFG,
    specialized: SpecializedRD,
    outgoing_labels: Dict[str, int],
) -> CopyEdges:
    """Rule [Outcoming values]: copy the reads feeding an outgoing signal.

    For every wait label ``l`` and ``(n, l') ∈ RD†ϕ(l)`` with ``n`` an ``out``
    port, the reads of the assignment at ``l'`` flow to ``l_{n•}``.
    """
    edges: CopyEdges = {}
    for wait_label in program_cfg.wait_labels:
        for signal, assign_label in specialized.active_at(wait_label):
            target = outgoing_labels.get(signal)
            if target is not None:
                edges.setdefault(assign_label, set()).add(target)
    return edges


def improved_global_resource_matrix(
    program_cfg: ProgramCFG,
    rm_lo: ResourceMatrix,
    specialized: SpecializedRD,
    design: Design,
) -> ImprovedClosureResult:
    """Run the Table 8 closure extended with the Table 9 rules."""
    outgoing_labels = allocate_outgoing_labels(program_cfg, design)

    copy_edges = merge_edges(
        present_value_edges(specialized),
        synchronized_value_edges(program_cfg, specialized),
        outcoming_value_edges(program_cfg, specialized, outgoing_labels),
    )

    seeds: ResourceMatrix = rm_lo.copy()
    for entry in initial_value_seeds(specialized):
        seeds.add_entry(entry)
    for entry in incoming_value_seeds(program_cfg, specialized, design):
        seeds.add_entry(entry)
    for entry in outgoing_value_seeds(outgoing_labels):
        seeds.add_entry(entry)

    rm_global = propagate(seeds, copy_edges)
    return ImprovedClosureResult(
        rm_global=rm_global,
        copy_edges=copy_edges,
        outgoing_labels=outgoing_labels,
    )
