"""The paper's analyses: Reaching Definitions (Section 4) and Information Flow
(Section 5), plus Kemmerer's baseline (Section 5.2 / Section 6).

Module map (paper table → module):

===========================  ==============================================
Paper artefact               Module
===========================  ==============================================
Table 4 (``RD∪ϕ``/``RD∩ϕ``)  :mod:`repro.analysis.reaching_active`
Table 5 (``RDcf``)           :mod:`repro.analysis.reaching_defs`
Table 6 (local deps)         :mod:`repro.analysis.local_deps`
Table 7 (``RD†``/``RD†ϕ``)   :mod:`repro.analysis.specialize`
Table 8 (closure)            :mod:`repro.analysis.closure`
Table 9 (improved)           :mod:`repro.analysis.improved`
Kemmerer's method            :mod:`repro.analysis.kemmerer`
Result graph                 :mod:`repro.analysis.flowgraph`
High-level API               :mod:`repro.analysis.api`
ALFP encoding                :mod:`repro.analysis.alfp`
===========================  ==============================================
"""

from repro.analysis.api import AnalysisResult, analyze, analyze_design, analyze_kemmerer
from repro.analysis.flowgraph import FlowGraph
from repro.analysis.resource_matrix import Access, Entry, ResourceMatrix

__all__ = [
    "Access",
    "AnalysisResult",
    "Entry",
    "FlowGraph",
    "ResourceMatrix",
    "analyze",
    "analyze_design",
    "analyze_kemmerer",
]
