"""Kemmerer's Shared Resource Matrix method — the paper's baseline.

Section 5.2: "one way to [compute the global dependencies] is to take the
transitive closure of the local dependencies; this method is attributed to
Kemmerer".  The method is *flow-insensitive*: it ignores the order of the
statements, so for the program ``(a): c := b; b := a`` it reports a flow from
``a`` to ``c`` even though no execution exhibits it.  Section 6 uses this
baseline on the AES ShiftRows function, where the reused temporary variables
make every input row element appear to flow to every output row element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.flowgraph import FlowGraph
from repro.analysis.local_deps import local_resource_matrix
from repro.analysis.resource_matrix import ResourceMatrix
from repro.cfg.builder import ProgramCFG
from repro.dataflow.universe import FactUniverse


@dataclass
class KemmererResult:
    """Local Resource Matrix, its direct-flow graph and the closed graph."""

    rm_local: ResourceMatrix
    direct_graph: FlowGraph
    graph: FlowGraph
    """The transitive closure of ``direct_graph`` — Kemmerer's reported flows."""


def kemmerer_analysis(
    program_cfg: ProgramCFG, universe: Optional[FactUniverse] = None
) -> KemmererResult:
    """Run Kemmerer's method on an already-built program CFG."""
    rm_local = local_resource_matrix(program_cfg, universe=universe)
    direct = FlowGraph.from_resource_matrix(rm_local)
    closed = direct.transitive_closure()
    return KemmererResult(rm_local=rm_local, direct_graph=direct, graph=closed)


def kemmerer_graph_from_matrix(rm_local: ResourceMatrix) -> FlowGraph:
    """Kemmerer's graph for a pre-computed local Resource Matrix."""
    return FlowGraph.from_resource_matrix(rm_local).transitive_closure()
