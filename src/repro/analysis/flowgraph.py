"""The result artefact of the analysis: a (generally non-transitive) directed
information-flow graph.

Nodes represent resources (variables and signals, plus the incoming ``n◦`` and
outgoing ``n•`` nodes of the improved analysis); an edge ``n1 → n2`` records
that information *might* flow from ``n1`` to ``n2``.  The graph is built from
a Resource Matrix by connecting, for every label, everything read there to
everything modified there.

Storage is bitset-native: the graph keeps a :class:`FactUniverse` of node
names, a node bitset and adjacency maps ``node index → neighbour bitset``.
Either direction may be materialised; the other is derived by a lazy,
cached transpose.  :meth:`from_resource_matrix` consumes the label-columnar
matrix directly — one ``pred[m] |= reads`` OR per set modification bit of
each label row — without ever materialising the edge set; edges are decoded
lazily, only by :meth:`to_dot`, :meth:`to_adjacency`,
:meth:`edge_difference`, iteration and the :attr:`edges` property.
:meth:`from_edges` builds the same structure from an explicit edge set and,
together with :func:`resource_matrix_edges` (the original
product-of-reads-and-mods materialisation), serves as the cross-check oracle
mirroring ``solve_sets`` / ``propagate_naive``.

The class also provides the graph algebra the evaluation needs: transitive
closure (Kemmerer's method), reachability, merging of environment nodes,
projection onto a node subset, DOT export and structural comparison.
"""

from __future__ import annotations

import itertools
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.analysis.resource_matrix import (
    ResourceMatrix,
    base_resource,
    is_incoming,
    is_outgoing,
)
from repro.dataflow import bitset as bitset_module
from repro.dataflow.universe import FactUniverse, bit_indices

Edge = Tuple[str, str]

Adjacency = Dict[int, int]
"""``node index → neighbour bitset`` (no zero-valued entries)."""


def _transpose(adjacency: Adjacency) -> Adjacency:
    """Reverse a bitset adjacency map (successors ↔ predecessors)."""
    reversed_map: Adjacency = {}
    get = reversed_map.get
    for index, bits in adjacency.items():
        bit = 1 << index
        for neighbour in bit_indices(bits):
            reversed_map[neighbour] = get(neighbour, 0) | bit
    return reversed_map


def _drop_self_loops(adjacency: Adjacency) -> Adjacency:
    """The adjacency map with every ``n → n`` bit cleared."""
    result: Adjacency = {}
    for index, bits in adjacency.items():
        cleared = bits & ~(1 << index)
        if cleared:
            result[index] = cleared
    return result


def resource_matrix_edges(
    matrix: ResourceMatrix, include_self_loops: bool = True
) -> Set[Edge]:
    """The explicit edge set of a Resource Matrix (the set-based oracle).

    This is the original construction — for every label, the cartesian product
    of the decoded read names and modified names — kept as the cross-check
    oracle for :meth:`FlowGraph.from_resource_matrix`, which computes the same
    relation without materialising these tuples.
    """
    universe = matrix.universe
    decoded: Dict[int, List[str]] = {}

    def names_of(bits: int) -> List[str]:
        names = decoded.get(bits)
        if names is None:
            names = decoded[bits] = universe.decode_list(bits)
        return names

    edges: Set[Edge] = set()
    for _, row in matrix.iter_rows():
        mods_bits = row[0] | row[1]
        reads_bits = row[2] | row[3]
        if not mods_bits or not reads_bits:
            continue
        pairs = itertools.product(names_of(reads_bits), names_of(mods_bits))
        if include_self_loops:
            edges.update(pairs)
        else:
            edges.update((r, m) for r, m in pairs if r != m)
    return edges


class FlowGraph:
    """A directed graph over resource names, stored as per-node bitsets.

    Instances are immutable: every transformation returns a new graph.  The
    node universe is shared with the producing Resource Matrix (or private for
    :meth:`from_edges` graphs) and may contain names that are not nodes of
    this graph; the node set proper is the ``_node_bits`` bitset.  At least
    one of the successor/predecessor maps is materialised; the other is
    derived on first use by :func:`_transpose` and cached.
    """

    __slots__ = ("_universe", "_node_bits", "_succ", "_pred", "_edges_cache")

    def __init__(
        self,
        universe: Optional[FactUniverse] = None,
        node_bits: int = 0,
        successors: Optional[Adjacency] = None,
        predecessors: Optional[Adjacency] = None,
    ):
        self._universe: FactUniverse = (
            universe if universe is not None else FactUniverse()
        )
        self._node_bits = node_bits
        if successors is None and predecessors is None:
            successors = {}
        self._succ: Optional[Adjacency] = successors
        self._pred: Optional[Adjacency] = predecessors
        self._edges_cache: Optional[FrozenSet[Edge]] = None

    def _successor_map(self) -> Adjacency:
        """``source index → successor bitset`` (transposed on first use)."""
        if self._succ is None:
            self._succ = _transpose(self._pred)
        return self._succ

    def _predecessor_map(self) -> Adjacency:
        """``target index → predecessor bitset`` (transposed on first use)."""
        if self._pred is None:
            self._pred = _transpose(self._succ)
        return self._pred

    def _any_map(self) -> Adjacency:
        """Whichever adjacency direction is already materialised."""
        return self._succ if self._succ is not None else self._pred

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_resource_matrix(
        cls,
        matrix: ResourceMatrix,
        include_self_loops: bool = True,
        backend: Optional[str] = None,
    ) -> "FlowGraph":
        """Build the flow graph of a (local or global) Resource Matrix.

        For every label ``l`` with a modification entry ``(m, l, M*)`` and a
        read entry ``(r, l, R*)``, the edge ``r → m`` is recorded.  The matrix
        is consumed in its columnar form as predecessor bitsets — one
        ``pred[m] |= reads`` OR per set modification bit of each row, which is
        tiny because labels modify few resources while they may read many —
        and no edge tuple is ever built; the successor direction is derived
        lazily if a consumer asks for it.

        ``backend`` selects the bitset representation for the accumulation
        (``"int"`` / ``"words"``; ``None`` resolves the benchmarked default
        via :func:`repro.dataflow.bitset.backend_for`).  Both build the same
        graph; the word path ORs numpy rows in place and unpacks once.
        """
        if backend is None:
            backend = bitset_module.backend_for("flow_graph")
        if backend == bitset_module.WORDS and bitset_module.HAVE_WORD_BACKEND:
            node_bits, pred = cls._predecessors_words(matrix)
        else:
            node_bits, pred = cls._predecessors_ints(matrix)
        if not include_self_loops:
            pred = _drop_self_loops(pred)
        return cls(matrix.universe, node_bits, predecessors=pred)

    @staticmethod
    def _predecessors_ints(matrix: ResourceMatrix) -> Tuple[int, Adjacency]:
        """Predecessor accumulation over Python-int bitsets."""
        node_bits = 0
        pred: Adjacency = {}
        get = pred.get
        for _, row in matrix.iter_rows():
            mods_bits = row[0] | row[1]
            reads_bits = row[2] | row[3]
            node_bits |= mods_bits | reads_bits
            if mods_bits and reads_bits:
                for modified in bit_indices(mods_bits):
                    pred[modified] = get(modified, 0) | reads_bits
        return node_bits, pred

    @staticmethod
    def _predecessors_words(matrix: ResourceMatrix) -> Tuple[int, Adjacency]:
        """Predecessor accumulation over numpy word rows.

        Each row's read-set is packed once and ORed in place into the
        per-modified-node accumulator; accumulators unpack to plain int
        bitsets at the end, so the resulting graph is representation-free.
        """
        import numpy as np

        rows = [
            (row[0] | row[1], row[2] | row[3]) for _, row in matrix.iter_rows()
        ]
        node_bits = 0
        width = 0
        for mods_bits, reads_bits in rows:
            node_bits |= mods_bits | reads_bits
        width = node_bits.bit_length()
        words = bitset_module.words_for(width)
        pack = bitset_module.pack
        bitwise_or = np.bitwise_or
        accumulators: Dict[int, Any] = {}
        for mods_bits, reads_bits in rows:
            if not mods_bits or not reads_bits:
                continue
            packed = pack(reads_bits, words)
            for modified in bit_indices(mods_bits):
                existing = accumulators.get(modified)
                if existing is None:
                    accumulators[modified] = packed.copy()
                else:
                    bitwise_or(existing, packed, out=existing)
        unpack = bitset_module.unpack
        pred: Adjacency = {
            index: unpack(row) for index, row in accumulators.items()
        }
        return node_bits, pred

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], nodes: Iterable[str] = ()
    ) -> "FlowGraph":
        """Build a graph from explicit edges (the oracle construction path)."""
        universe: FactUniverse = FactUniverse()
        node_bits = 0
        succ: Adjacency = {}
        for name in nodes:
            node_bits |= 1 << universe.intern(name)
        for src, dst in edges:
            src_index = universe.intern(src)
            dst_index = universe.intern(dst)
            node_bits |= (1 << src_index) | (1 << dst_index)
            succ[src_index] = succ.get(src_index, 0) | (1 << dst_index)
        return cls(universe, node_bits, successors=succ)

    def copy(self) -> "FlowGraph":
        """An independent copy (the append-only universe is shared)."""
        return FlowGraph(
            self._universe,
            self._node_bits,
            successors=None if self._succ is None else dict(self._succ),
            predecessors=None if self._pred is None else dict(self._pred),
        )

    # -- basic queries ----------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[str]:
        """The node names (decoded on demand)."""
        return self._universe.decode(self._node_bits)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set, decoded lazily on first access and cached."""
        if self._edges_cache is None:
            self._edges_cache = frozenset(self.iter_edges())
        return self._edges_cache

    def iter_edges(self) -> Iterator[Edge]:
        """Decode the edges one at a time (no particular order)."""
        fact_of = self._universe.fact_of
        decode_iter = self._universe.decode_iter
        if self._succ is not None:
            for src_index, bits in self._succ.items():
                src = fact_of(src_index)
                for dst in decode_iter(bits):
                    yield (src, dst)
        else:
            for dst_index, bits in self._pred.items():
                dst = fact_of(dst_index)
                for src in decode_iter(bits):
                    yield (src, dst)

    def __iter__(self) -> Iterator[Edge]:
        return self.iter_edges()

    def __contains__(self, edge: object) -> bool:
        if not isinstance(edge, tuple) or len(edge) != 2:
            return False
        source, target = edge
        return self.has_edge(source, target)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlowGraph):
            if self._universe is other._universe:
                if self._node_bits != other._node_bits:
                    return False
                if self._succ is not None and other._succ is not None:
                    return self._succ == other._succ
                if self._pred is not None and other._pred is not None:
                    return self._pred == other._pred
                return self._successor_map() == other._successor_map()
            return self.nodes == other.nodes and self.edges == other.edges
        return NotImplemented

    def has_node(self, node: str) -> bool:
        """True when ``node`` is a node of this graph."""
        universe = self._universe
        if node not in universe:
            return False
        return bool(self._node_bits >> universe.index_of(node) & 1)

    def has_edge(self, source: str, target: str) -> bool:
        """True when the direct edge ``source → target`` is present."""
        universe = self._universe
        if source not in universe or target not in universe:
            return False
        source_index = universe.index_of(source)
        target_index = universe.index_of(target)
        if self._succ is not None:
            return bool(self._succ.get(source_index, 0) >> target_index & 1)
        return bool(self._pred.get(target_index, 0) >> source_index & 1)

    def successors(self, node: str) -> FrozenSet[str]:
        """Direct successors of ``node``."""
        universe = self._universe
        if node not in universe:
            return frozenset()
        return universe.decode(
            self._successor_map().get(universe.index_of(node), 0)
        )

    def predecessors(self, node: str) -> FrozenSet[str]:
        """Direct predecessors of ``node``."""
        universe = self._universe
        if node not in universe:
            return frozenset()
        return universe.decode(
            self._predecessor_map().get(universe.index_of(node), 0)
        )

    def targets(self) -> FrozenSet[str]:
        """The nodes with at least one incoming edge (possible flow sinks)."""
        if self._pred is not None:
            fact_of = self._universe.fact_of
            return frozenset(fact_of(index) for index in self._pred)
        bits = 0
        for successor_bits in self._succ.values():
            bits |= successor_bits
        return self._universe.decode(bits)

    def edge_count(self) -> int:
        """Number of edges."""
        return sum(bits.bit_count() for bits in self._any_map().values())

    def node_count(self) -> int:
        """Number of nodes."""
        return self._node_bits.bit_count()

    # -- reachability and closure --------------------------------------------------

    def _reach_bits(self) -> Dict[int, int]:
        """Per-node bitsets of everything reachable along one or more edges.

        Computed over the SCC condensation (iterative Tarjan, shared with the
        Resource Matrix closure), ORing whole bitsets along the component DAG
        — the bitset form of the paper's "cubic time reachability analysis".
        """
        from repro.analysis.closure import _strongly_connected_components

        successors = self._successor_map()
        indexed_edges = {
            index: tuple(bit_indices(bits)) for index, bits in successors.items()
        }
        comp_of, components = _strongly_connected_components(
            bit_indices(self._node_bits), indexed_edges
        )
        comp_reach: List[int] = [0] * len(components)
        # Tarjan emits every component after all components reachable from it,
        # so one pass in emission order sees successors already finished.
        for comp, members in enumerate(components):
            bits = 0
            for member in members:
                bits |= successors.get(member, 0)
            for member in members:
                for target in indexed_edges.get(member, ()):
                    target_comp = comp_of[target]
                    if target_comp != comp:
                        bits |= comp_reach[target_comp]
            comp_reach[comp] = bits
        return {index: comp_reach[comp] for index, comp in comp_of.items()}

    def reachable_from(self, node: str, include_start: bool = False) -> FrozenSet[str]:
        """All nodes reachable from ``node`` along one or more edges."""
        universe = self._universe
        if node not in universe:
            return frozenset({node}) if include_start else frozenset()
        successors = self._successor_map()
        reached = 0
        pending = successors.get(universe.index_of(node), 0)
        while pending:
            low = pending & -pending
            pending ^= low
            reached |= low
            pending |= successors.get(low.bit_length() - 1, 0) & ~reached
        result = universe.decode(reached)
        if include_start:
            result |= {node}
        return result

    def flows_to(self, source: str, target: str) -> bool:
        """True when there is a (possibly indirect) path ``source → … → target``."""
        return target in self.reachable_from(source)

    def transitive_closure(self) -> "FlowGraph":
        """The transitive closure (the essence of Kemmerer's method)."""
        closure = {
            index: bits for index, bits in self._reach_bits().items() if bits
        }
        return FlowGraph(self._universe, self._node_bits, successors=closure)

    def is_transitive(self) -> bool:
        """True when the edge relation is already transitively closed.

        The paper stresses that the analysis result is *in general
        non-transitive*, which is precisely what distinguishes it from
        Kemmerer's method.  Transitivity is checked per node on bitsets:
        ``(a, b) ∈ E`` requires ``succ(b) ⊆ succ(a)`` — or, equivalently on
        the predecessor direction, ``pred(a) ⊆ pred(b)``; whichever map is
        already materialised is used.
        """
        adjacency = self._any_map()
        for bits in adjacency.values():
            two_step = 0
            for neighbour in bit_indices(bits):
                two_step |= adjacency.get(neighbour, 0)
            if two_step & ~bits:
                return False
        return True

    # -- transformations -------------------------------------------------------------

    def without_self_loops(self) -> "FlowGraph":
        """Drop ``n → n`` edges (they carry no information-flow content)."""
        if self._succ is not None:
            return FlowGraph(
                self._universe,
                self._node_bits,
                successors=_drop_self_loops(self._succ),
            )
        return FlowGraph(
            self._universe,
            self._node_bits,
            predecessors=_drop_self_loops(self._pred),
        )

    def restricted_to(self, nodes: Iterable[str]) -> "FlowGraph":
        """The induced subgraph on ``nodes``."""
        universe = self._universe
        keep = 0
        for name in nodes:
            if name in universe:
                keep |= 1 << universe.index_of(name)
        keep &= self._node_bits

        def mask(adjacency: Adjacency) -> Adjacency:
            result: Adjacency = {}
            for index, bits in adjacency.items():
                if keep >> index & 1:
                    kept = bits & keep
                    if kept:
                        result[index] = kept
            return result

        if self._succ is not None:
            return FlowGraph(universe, keep, successors=mask(self._succ))
        return FlowGraph(universe, keep, predecessors=mask(self._pred))

    def renamed(self, mapping: Mapping[str, str]) -> "FlowGraph":
        """Rename (and thereby possibly merge) nodes according to ``mapping``."""
        universe = self._universe
        new_universe: FactUniverse = FactUniverse()
        new_index: Dict[int, int] = {}
        node_bits = 0
        for index in bit_indices(self._node_bits):
            name = universe.fact_of(index)
            renamed_index = new_universe.intern(mapping.get(name, name))
            new_index[index] = renamed_index
            node_bits |= 1 << renamed_index

        def translate(adjacency: Adjacency) -> Adjacency:
            result: Adjacency = {}
            for index, bits in adjacency.items():
                translated = 0
                for neighbour in bit_indices(bits):
                    translated |= 1 << new_index[neighbour]
                source = new_index[index]
                result[source] = result.get(source, 0) | translated
            return result

        if self._succ is not None:
            return FlowGraph(
                new_universe, node_bits, successors=translate(self._succ)
            )
        return FlowGraph(
            new_universe, node_bits, predecessors=translate(self._pred)
        )

    def collapse_environment_nodes(self) -> "FlowGraph":
        """Merge every ``n◦``/``n•`` node into its base resource ``n``.

        The paper performs exactly this merge before comparing its result with
        Kemmerer's on the ShiftRows function ("we have merged incoming and
        outgoing nodes", Section 6).
        """
        mapping = {
            node: base_resource(node)
            for node in self.nodes
            if is_incoming(node) or is_outgoing(node)
        }
        return self.renamed(mapping)

    # -- comparisons --------------------------------------------------------------------

    def edge_difference(self, other: "FlowGraph") -> FrozenSet[Edge]:
        """Edges present here but absent from ``other`` (false positives if
        ``other`` is ground truth)."""
        return frozenset(
            edge for edge in self.iter_edges() if edge not in other
        )

    def is_subgraph_of(self, other: "FlowGraph") -> bool:
        """True when every edge of this graph also appears in ``other``."""
        if self._universe is other._universe:
            if self._succ is not None and other._succ is not None:
                reference = other._succ
                return all(
                    not bits & ~reference.get(index, 0)
                    for index, bits in self._succ.items()
                )
            if self._pred is not None and other._pred is not None:
                reference = other._pred
                return all(
                    not bits & ~reference.get(index, 0)
                    for index, bits in self._pred.items()
                )
        return all(edge in other for edge in self.iter_edges())

    # -- export ---------------------------------------------------------------------------

    def to_dot(self, name: str = "information_flow", rankdir: str = "LR") -> str:
        """Graphviz DOT rendering (environment nodes get distinct shapes)."""
        lines = [f"digraph {name} {{", f"  rankdir={rankdir};"]
        for node in sorted(self._universe.decode_iter(self._node_bits)):
            shape = "ellipse"
            if is_incoming(node):
                shape = "invhouse"
            elif is_outgoing(node):
                shape = "house"
            lines.append(f'  "{node}" [shape={shape}];')
        for source, target in sorted(self.iter_edges()):
            lines.append(f'  "{source}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines)

    def to_adjacency(self) -> Dict[str, List[str]]:
        """Adjacency-list rendering with sorted successor lists."""
        universe = self._universe
        index_of = universe.index_of
        successors = self._successor_map()
        return {
            node: sorted(universe.decode_iter(successors.get(index_of(node), 0)))
            for node in sorted(universe.decode_iter(self._node_bits))
        }

    def summary(self) -> str:
        """One-line description used by the CLI and benchmarks."""
        return (
            f"{self.node_count()} nodes, {self.edge_count()} edges, "
            f"{'transitive' if self.is_transitive() else 'non-transitive'}"
        )
