"""The result artefact of the analysis: a (generally non-transitive) directed
information-flow graph.

Nodes represent resources (variables and signals, plus the incoming ``n◦`` and
outgoing ``n•`` nodes of the improved analysis); an edge ``n1 → n2`` records
that information *might* flow from ``n1`` to ``n2``.  The graph is built from
a Resource Matrix by connecting, for every label, everything read there to
everything modified there.

The class also provides the graph algebra the evaluation needs: transitive
closure (Kemmerer's method), reachability, merging of environment nodes,
projection onto a node subset, DOT export and structural comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.resource_matrix import (
    Access,
    ResourceMatrix,
    base_resource,
    is_incoming,
    is_outgoing,
    name_universe,
)
from repro.dataflow.universe import FactUniverse

Edge = Tuple[str, str]


@dataclass
class FlowGraph:
    """A directed graph over resource names."""

    nodes: Set[str] = field(default_factory=set)
    edges: Set[Edge] = field(default_factory=set)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_resource_matrix(
        cls, matrix: ResourceMatrix, include_self_loops: bool = True
    ) -> "FlowGraph":
        """Build the flow graph of a (local or global) Resource Matrix.

        For every label ``l`` with a modification entry ``(m, l, M*)`` and a
        read entry ``(r, l, R*)``, the edge ``r → m`` is added.  The matrix is
        consumed in its columnar form: each label contributes one read bitset
        and one modification bitset, decoded once per distinct bitset.
        """
        graph = cls()
        universe = name_universe()
        decoded: Dict[int, List[str]] = {}

        def names_of(bits: int) -> List[str]:
            names = decoded.get(bits)
            if names is None:
                names = decoded[bits] = universe.decode_list(bits)
            return names

        all_bits = 0
        edges = graph.edges
        for _, row in matrix.iter_rows():
            mods_bits = row[0] | row[1]
            reads_bits = row[2] | row[3]
            all_bits |= mods_bits | reads_bits
            if not mods_bits or not reads_bits:
                continue
            reads = names_of(reads_bits)
            mods = names_of(mods_bits)
            if include_self_loops:
                edges.update(itertools.product(reads, mods))
            else:
                edges.update(
                    (read, modified)
                    for read, modified in itertools.product(reads, mods)
                    if read != modified
                )
        graph.nodes.update(names_of(all_bits))
        return graph

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], nodes: Iterable[str] = ()
    ) -> "FlowGraph":
        """Build a graph from explicit edges (used by tests and baselines)."""
        graph = cls()
        graph.nodes.update(nodes)
        for src, dst in edges:
            graph.nodes.add(src)
            graph.nodes.add(dst)
            graph.edges.add((src, dst))
        return graph

    def copy(self) -> "FlowGraph":
        """An independent copy."""
        return FlowGraph(nodes=set(self.nodes), edges=set(self.edges))

    # -- basic queries ----------------------------------------------------------

    def __contains__(self, edge: Edge) -> bool:
        return edge in self.edges

    def has_edge(self, source: str, target: str) -> bool:
        """True when the direct edge ``source → target`` is present."""
        return (source, target) in self.edges

    def successors(self, node: str) -> FrozenSet[str]:
        """Direct successors of ``node``."""
        return frozenset(dst for src, dst in self.edges if src == node)

    def predecessors(self, node: str) -> FrozenSet[str]:
        """Direct predecessors of ``node``."""
        return frozenset(src for src, dst in self.edges if dst == node)

    def edge_count(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    # -- reachability and closure --------------------------------------------------

    def _successor_bits(self) -> Tuple["FactUniverse", Dict[int, int]]:
        """Node universe plus per-node direct-successor bitsets."""
        universe = FactUniverse(sorted(self.nodes))
        successors: Dict[int, int] = {}
        intern = universe.intern
        for src, dst in self.edges:
            src_index = intern(src)
            successors[src_index] = successors.get(src_index, 0) | (
                1 << intern(dst)
            )
        return universe, successors

    def _reach_bits(self) -> Tuple["FactUniverse", Dict[int, int]]:
        """Per-node bitsets of everything reachable along one or more edges.

        Computed over the SCC condensation (iterative Tarjan, shared with the
        Resource Matrix closure), ORing whole bitsets along the component DAG
        — the bitset form of the paper's "cubic time reachability analysis".
        """
        from repro.analysis.closure import _strongly_connected_components

        universe, successors = self._successor_bits()
        indexed_edges: Dict[int, Tuple[int, ...]] = {}
        for index, bits in successors.items():
            targets = []
            while bits:
                low = bits & -bits
                targets.append(low.bit_length() - 1)
                bits ^= low
            indexed_edges[index] = tuple(targets)
        comp_of, components = _strongly_connected_components(
            range(len(universe)), indexed_edges
        )
        comp_reach: List[int] = [0] * len(components)
        # Tarjan emits every component after all components reachable from it,
        # so one pass in emission order sees successors already finished.
        for comp, members in enumerate(components):
            bits = 0
            for member in members:
                bits |= successors.get(member, 0)
            for member in members:
                for target in indexed_edges.get(member, ()):
                    target_comp = comp_of[target]
                    if target_comp != comp:
                        bits |= comp_reach[target_comp]
            comp_reach[comp] = bits
        reach = {
            index: comp_reach[comp_of[index]] for index in range(len(universe))
        }
        return universe, reach

    def reachable_from(self, node: str, include_start: bool = False) -> FrozenSet[str]:
        """All nodes reachable from ``node`` along one or more edges."""
        adjacency: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        visited: Set[str] = set()
        stack: List[str] = list(adjacency.get(node, []))
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            stack.extend(adjacency.get(current, []))
        if include_start:
            visited.add(node)
        return frozenset(visited)

    def flows_to(self, source: str, target: str) -> bool:
        """True when there is a (possibly indirect) path ``source → … → target``."""
        return target in self.reachable_from(source)

    def transitive_closure(self) -> "FlowGraph":
        """The transitive closure (the essence of Kemmerer's method)."""
        closure = self.copy()
        universe, reach = self._reach_bits()
        edges = closure.edges
        for index, bits in reach.items():
            if bits:
                node = universe.fact_of(index)
                edges.update(
                    (node, reached) for reached in universe.decode_list(bits)
                )
        return closure

    def is_transitive(self) -> bool:
        """True when the edge relation is already transitively closed.

        The paper stresses that the analysis result is *in general
        non-transitive*, which is precisely what distinguishes it from
        Kemmerer's method.  Transitivity is checked edge-wise on bitsets:
        ``(a, b) ∈ E`` requires ``succ(b) ⊆ succ(a)``.
        """
        universe, successors = self._successor_bits()
        index_of = universe.index_of
        not_successors = {index: ~bits for index, bits in successors.items()}
        for src, dst in self.edges:
            if successors.get(index_of(dst), 0) & not_successors[index_of(src)]:
                return False
        return True

    # -- transformations -------------------------------------------------------------

    def without_self_loops(self) -> "FlowGraph":
        """Drop ``n → n`` edges (they carry no information-flow content)."""
        return FlowGraph(
            nodes=set(self.nodes),
            edges={(s, t) for s, t in self.edges if s != t},
        )

    def restricted_to(self, nodes: Iterable[str]) -> "FlowGraph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        return FlowGraph(
            nodes=set(self.nodes) & keep,
            edges={(s, t) for s, t in self.edges if s in keep and t in keep},
        )

    def renamed(self, mapping: Mapping[str, str]) -> "FlowGraph":
        """Rename (and thereby possibly merge) nodes according to ``mapping``."""
        rename = lambda name: mapping.get(name, name)
        return FlowGraph(
            nodes={rename(n) for n in self.nodes},
            edges={(rename(s), rename(t)) for s, t in self.edges},
        )

    def collapse_environment_nodes(self) -> "FlowGraph":
        """Merge every ``n◦``/``n•`` node into its base resource ``n``.

        The paper performs exactly this merge before comparing its result with
        Kemmerer's on the ShiftRows function ("we have merged incoming and
        outgoing nodes", Section 6).
        """
        mapping = {
            node: base_resource(node)
            for node in self.nodes
            if is_incoming(node) or is_outgoing(node)
        }
        return self.renamed(mapping)

    # -- comparisons --------------------------------------------------------------------

    def edge_difference(self, other: "FlowGraph") -> FrozenSet[Edge]:
        """Edges present here but absent from ``other`` (false positives if
        ``other`` is ground truth)."""
        return frozenset(self.edges - other.edges)

    def is_subgraph_of(self, other: "FlowGraph") -> bool:
        """True when every edge of this graph also appears in ``other``."""
        return self.edges <= other.edges

    # -- export ---------------------------------------------------------------------------

    def to_dot(self, name: str = "information_flow", rankdir: str = "LR") -> str:
        """Graphviz DOT rendering (environment nodes get distinct shapes)."""
        lines = [f"digraph {name} {{", f"  rankdir={rankdir};"]
        for node in sorted(self.nodes):
            shape = "ellipse"
            if is_incoming(node):
                shape = "invhouse"
            elif is_outgoing(node):
                shape = "house"
            lines.append(f'  "{node}" [shape={shape}];')
        for source, target in sorted(self.edges):
            lines.append(f'  "{source}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines)

    def to_adjacency(self) -> Dict[str, List[str]]:
        """Adjacency-list rendering with sorted successor lists."""
        adjacency: Dict[str, List[str]] = {node: [] for node in self.nodes}
        for src, dst in self.edges:
            adjacency[src].append(dst)
        return {node: sorted(succs) for node, succs in sorted(adjacency.items())}

    def summary(self) -> str:
        """One-line description used by the CLI and benchmarks."""
        return (
            f"{self.node_count()} nodes, {self.edge_count()} edges, "
            f"{'transitive' if self.is_transitive() else 'non-transitive'}"
        )
