#!/usr/bin/env python3
"""Quickstart: analyse a small VHDL1 design and inspect the flow graph.

The design below is a tiny two-process pipeline: the first process combines a
data input with a mask, the second forwards the combined value to the output
port.  The example runs the full improved Information Flow analysis
(Tables 4–9 of the paper), prints the resulting non-transitive flow graph,
shows what Kemmerer's baseline would report instead, and finishes with the
answer to the question an evaluator actually asks: *which inputs can influence
which outputs?*

Run with::

    python examples/quickstart.py
"""

from repro import analyze, analyze_kemmerer
from repro.analysis.resource_matrix import incoming_node, outgoing_node
from repro.security.report import output_dependencies

DESIGN = """
entity scrambler is
  port( data   : in  std_logic_vector(7 downto 0);
        mask   : in  std_logic_vector(7 downto 0);
        enable : in  std_logic;
        result : out std_logic_vector(7 downto 0) );
end scrambler;

architecture behav of scrambler is
  signal scrambled : std_logic_vector(7 downto 0);
begin
  mix : process
    variable tmp : std_logic_vector(7 downto 0);
  begin
    if enable = '1' then
      tmp := data xor mask;
    else
      tmp := data;
    end if;
    scrambled <= tmp;
    wait on data, mask, enable;
  end process mix;

  drive : process
  begin
    result <= scrambled;
    wait on scrambled;
  end process drive;
end behav;
"""


def main() -> None:
    print("=== Information Flow analysis (improved, Tables 4-9) ===")
    result = analyze(DESIGN)
    print(result.summary())
    print()

    graph = result.graph_without_self_loops()
    print("Flow graph (adjacency list):")
    for node, successors in graph.to_adjacency().items():
        if successors:
            print(f"  {node:>12} -> {', '.join(successors)}")
    print()

    print("Graphviz DOT (paste into `dot -Tpng`):")
    print(graph.to_dot(name="scrambler"))
    print()

    print("=== Kemmerer's baseline (transitive closure) ===")
    kemmerer = analyze_kemmerer(DESIGN).graph.without_self_loops()
    extra = kemmerer.edge_difference(graph)
    print(f"our analysis : {graph.edge_count()} edges")
    print(f"Kemmerer     : {kemmerer.edge_count()} edges")
    print(f"edges only reported by the baseline: {len(extra)}")
    print()

    print("=== Which inputs reach which outputs? ===")
    for output, inputs in output_dependencies(result).items():
        print(f"  {output} <- {', '.join(inputs)}")
    sink = outgoing_node("result")
    for port in result.design.input_ports:
        direct = result.graph.has_edge(incoming_node(port), sink)
        print(f"  environment value of {port!r} reaches the output: {direct}")


if __name__ == "__main__":
    main()
