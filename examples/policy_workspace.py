"""Workspace + declarative policy walkthrough (the v1 public API).

Builds one session ``Workspace``, registers a TOML policy file, and checks
the same design twice — once against the declarative policy, once against
the equivalent in-code ``TwoLevelPolicy`` — demonstrating that a policy
expressed purely as data drives the checker to the same verdict, with
structured ``IFA...`` diagnostics either way.
"""

import tempfile
from pathlib import Path

from repro import Workspace
from repro import workloads
from repro.security.policy import TwoLevelPolicy

POLICY_TOML = """\
name = "two-level"
description = "the key must not reach public resources"
mode = "channel-control"
default = "public"

[levels]
public = 0
secret = 1

[resources]
key = "secret"

[[allow]]
from = "public"
to = "secret"
"""


def main() -> None:
    source = workloads.challenge_f_program()
    workspace = Workspace()  # in-memory cache: the second check is warm

    with tempfile.TemporaryDirectory() as scratch:
        policy_path = Path(scratch) / "two_level.toml"
        policy_path.write_text(POLICY_TOML, encoding="utf-8")
        workspace.load_policy(policy_path)  # registers under its name

    declared = workspace.check(source, policy="two-level")
    in_code = workspace.check(source, TwoLevelPolicy(secret_resources=["key"]))

    print(f"registered policies: {sorted(workspace.policies)}")
    print(f"declarative policy clean: {declared.clean}")
    for diagnostic in declared.diagnostics:
        print(f"  {diagnostic.code} {diagnostic.severity}: {diagnostic.message}")
    print(f"in-code policy clean:     {in_code.clean}")

    same = [d.to_dict() for d in declared.diagnostics] == [
        d.to_dict() for d in in_code.diagnostics
    ]
    print(f"identical diagnostics from file and code: {same}")
    assert same, "declarative and in-code policies must agree"

    # The second check hit the workspace cache for every analysis stage.
    print(f"warm stages on the second check: {len(in_code.run.cached_stages)}")


if __name__ == "__main__":
    main()
