#!/usr/bin/env python3
"""Reproduce the paper's Figure 5: auditing AES ShiftRows.

The NSA AES implementation rotates the three lower rows of the state in place,
reusing the *same* temporary variable for every row.  Kemmerer's Shared
Resource Matrix method is flow-insensitive, so the shared temporary makes every
row element appear to depend on every other element (Figure 5(a)).  The
paper's Reaching-Definitions-driven analysis recovers the exact permutation:
each element depends on precisely the element that is shifted into it
(Figure 5(b)).

The script prints both graphs (restricted to the twelve row-element nodes, with
incoming/outgoing nodes merged exactly as the paper does), reports the
precision gap and writes DOT renderings next to the script.

Run with::

    python examples/aes_shiftrows_audit.py
"""

from pathlib import Path

from repro.aes.generator import (
    shift_rows_expected_sources,
    shift_rows_paper_source,
    shift_rows_row_nodes,
)
from repro.analysis.api import analyze, analyze_kemmerer


def main() -> None:
    source = shift_rows_paper_source()
    nodes = [node for row in shift_rows_row_nodes().values() for node in row]

    print("Analysed program (generated, loops unrolled, shared temporary):")
    print("\n".join("    " + line for line in source.splitlines()[:20]))
    print("    ...")
    print()

    ours = (
        analyze(source, improved=True, loop_processes=False)
        .collapsed_graph()
        .without_self_loops()
        .restricted_to(nodes)
    )
    kemmerer = (
        analyze_kemmerer(source, loop_processes=False)
        .graph.without_self_loops()
        .restricted_to(nodes)
    )

    print("=== Figure 5(b): our analysis ===")
    for target in sorted(nodes):
        sources = ", ".join(sorted(ours.predecessors(target))) or "(none)"
        print(f"  {target} <- {sources}")
    print(f"  total edges: {ours.edge_count()}")
    print()

    print("=== Figure 5(a): Kemmerer's method ===")
    sample = sorted(nodes)[0]
    print(f"  e.g. {sample} <- {', '.join(sorted(kemmerer.predecessors(sample)))}")
    print(f"  total edges: {kemmerer.edge_count()}")
    print()

    expected = shift_rows_expected_sources()
    exact = all(
        ours.predecessors(target) == frozenset({source})
        for target, source in expected.items()
    )
    cross_row = [
        edge for edge in kemmerer.edges if edge[0].split("_")[1] != edge[1].split("_")[1]
    ]
    print("=== Comparison ===")
    print(f"  our graph matches the true ShiftRows permutation exactly: {exact}")
    print(f"  Kemmerer cross-row (false) edges: {len(cross_row)}")
    print(
        f"  false positives eliminated by the analysis: "
        f"{kemmerer.edge_count() - ours.edge_count()}"
    )

    out_dir = Path(__file__).resolve().parent
    (out_dir / "shiftrows_ours.dot").write_text(ours.to_dot("ours"), encoding="utf-8")
    (out_dir / "shiftrows_kemmerer.dot").write_text(
        kemmerer.to_dot("kemmerer"), encoding="utf-8"
    )
    print()
    print(f"DOT files written to {out_dir}/shiftrows_ours.dot and shiftrows_kemmerer.dot")


if __name__ == "__main__":
    main()
