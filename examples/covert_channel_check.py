#!/usr/bin/env python3
"""Common-Criteria style covert channel analysis of two key-handling designs.

The paper's motivation is the Covert Channel analysis required by the Common
Criteria: produce the complete information-flow graph, then argue that every
flow is permissible.  This example checks two designs against the policy
"the key must not reach the ciphertext-ready output `debug`":

* ``GOOD_DESIGN`` masks the key into an internal signal but only ever exports
  the plaintext-derived value — the temporary holding the key is overwritten
  first (the Open Challenge F pattern that security-type systems reject);
* ``LEAKY_DESIGN`` accidentally drives the debug port from the key-mixed
  value, a real covert channel that the analysis pinpoints.

Run with::

    python examples/covert_channel_check.py
"""

from repro import analyze
from repro.security.policy import SECRET, TwoLevelPolicy
from repro.security.report import build_report

GOOD_DESIGN = """
entity filter_unit is
  port( key    : in  std_logic_vector(7 downto 0);
        plain  : in  std_logic_vector(7 downto 0);
        cipher : out std_logic_vector(7 downto 0);
        debug  : out std_logic_vector(7 downto 0) );
end filter_unit;

architecture safe of filter_unit is
begin
  crypt : process
    variable work : std_logic_vector(7 downto 0);
  begin
    work := plain xor key;
    cipher <= work;
    work := plain;            -- overwritten: the key never reaches debug
    debug <= work;
    wait on key, plain;
  end process crypt;
end safe;
"""

LEAKY_DESIGN = GOOD_DESIGN.replace(
    "work := plain;            -- overwritten: the key never reaches debug",
    "null;                     -- forgot to clear the key-mixed value",
).replace("architecture safe", "architecture leaky")


def audit(name: str, source: str) -> None:
    print(f"=== {name} ===")
    result = analyze(source)
    policy = TwoLevelPolicy(secret_resources=["key", "cipher"])
    report = build_report(result, policy, restrict_to_ports=True)
    print(report.to_text())
    verdict = "PERMISSIBLE" if report.is_clean else "COVERT CHANNEL FOUND"
    print(f"verdict: {verdict}")
    print()


def main() -> None:
    audit("filter_unit (safe variant)", GOOD_DESIGN)
    audit("filter_unit (leaky variant)", LEAKY_DESIGN)

    print("Note: the `cipher` output legitimately depends on the key; the")
    print("policy classifies `cipher` itself as secret, so that flow is")
    print("permitted while any key flow into `debug` is reported.")


if __name__ == "__main__":
    main()
