#!/usr/bin/env python3
"""Execute the generated AES hardware with the delta-cycle simulator.

The paper validates its VHDL1 semantics against a commercial simulator
(ModelSim); this reproduction validates its simulator against a pure-Python
AES-128 reference instead.  The example drives three generated components —
AddRoundKey, ShiftRows and one MixColumns column — with a random state and
key, compares every result with the reference implementation, and then runs
the three-stage round pipeline to show values crossing process boundaries
through delta cycles.

Run with::

    python examples/simulate_aes_round.py
"""

import random

from repro.aes import generator, reference
from repro.semantics.simulator import Simulator, simulate
from repro.vhdl.elaborate import elaborate_source


def check(name: str, matches: bool) -> None:
    print(f"  {name:<22} {'OK' if matches else 'MISMATCH'}")
    if not matches:
        raise SystemExit(f"simulation disagrees with the reference for {name}")


def main() -> None:
    rng = random.Random(0x2005)
    state = [rng.randrange(256) for _ in range(16)]
    key = [rng.randrange(256) for _ in range(16)]
    print(f"state = {bytes(state).hex()}")
    print(f"key   = {bytes(key).hex()}")
    print()

    print("Simulating generated components against the Python reference:")

    design = elaborate_source(generator.add_round_key_source())
    outputs = simulate(
        design,
        {
            "state_i": reference.state_to_bitstring(state),
            "key_i": reference.state_to_bitstring(key),
        },
    )
    got = reference.bitstring_to_state(outputs["state_o"].to_string())
    check("AddRoundKey", got == reference.add_round_key(state, key))

    design = elaborate_source(generator.shift_rows_entity_source())
    outputs = simulate(design, {"state_i": reference.state_to_bitstring(state)})
    got = reference.bitstring_to_state(outputs["state_o"].to_string())
    check("ShiftRows", got == reference.shift_rows(state))

    design = elaborate_source(generator.mix_column_source())
    column = state[:4]
    outputs = simulate(design, {f"c{i}_i": format(column[i], "08b") for i in range(4)})
    got = [int(outputs[f"c{i}_o"].to_string(), 2) for i in range(4)]
    check("MixColumns (column 0)", got == reference.mix_single_column(column))

    print()
    print("Three-stage round pipeline (AddRoundKey -> ShiftRows -> output):")
    design = elaborate_source(generator.aes_round_source())
    simulator = Simulator(design)
    simulator.run()
    simulator.drive("state_i", reference.state_to_bitstring(state))
    simulator.drive("key_i", reference.state_to_bitstring(key))
    simulator.run()
    got = reference.bitstring_to_state(simulator.read_signal("state_o").to_string())
    expected = reference.shift_rows(reference.add_round_key(state, key))
    check("pipeline output", got == expected)
    print(f"  delta cycles needed: {simulator.delta_cycles}")
    print(f"  pipeline result: {bytes(got).hex()}")


if __name__ == "__main__":
    main()
